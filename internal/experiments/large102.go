package experiments

import (
	"fmt"
	"time"

	"mind/internal/cluster"
	"mind/internal/flowgen"
	"mind/internal/metrics"
	"mind/internal/mind"
	"mind/internal/topo"
	"mind/internal/transport/simnet"
)

// fabricateRouters builds an n-monitor deployment by tiling the real
// Abilene+GÉANT PoPs (the §4.3 large-scale experiment used 102
// arbitrarily chosen PlanetLab nodes across North America and Europe).
func fabricateRouters(n int) []topo.Router {
	base := topo.Combined()
	out := make([]topo.Router, n)
	for i := 0; i < n; i++ {
		r := base[i%len(base)]
		r.Name = fmt.Sprintf("%s-%d", r.Name, i/len(base))
		out[i] = r
	}
	return out
}

// setupLarge102 builds the 102-node deployment with churn-capable
// workload: Index-1 records inserted at roughly one record per second
// per node.
func setupLarge102(seed int64, scale float64) (*cluster.Cluster, indexSet, []timedRec, uint64, error) {
	routers := fabricateRouters(102)
	c, err := cluster.New(cluster.Options{
		Routers: routers,
		Seed:    seed,
		Sim: simnet.Config{
			Seed:        seed,
			Latency:     topo.LatencyFunc(routers, topo.Addr, 30*time.Millisecond),
			JitterFrac:  0.3,
			ServiceTime: 10 * time.Millisecond,
		},
		Node: nodeConfig(seed),
	})
	if err != nil {
		return nil, indexSet{}, nil, 0, err
	}
	ix := paperIndices(86400 * 4)
	if err := c.CreateIndex(ix.i1); err != nil {
		return nil, indexSet{}, nil, 0, err
	}
	c.Settle(10 * time.Second)

	dur := uint64(3600 * scale)
	if dur < 600 {
		dur = 600
	}
	wallStart := uint64(12 * 3600)
	gcfg := flowgen.DefaultConfig(seed + 3)
	gcfg.Routers = routers
	gcfg.BaseFlowsPerSec = 30 * scale
	if gcfg.BaseFlowsPerSec < 10 {
		gcfg.BaseFlowsPerSec = 10
	}
	g := flowgen.New(gcfg)
	recs := buildWorkload(g, wallStart, wallStart+dur, ix, true, false, false)
	return c, ix, recs, wallStart, nil
}

// driveInsertsWithChurn replays the workload while killing a node every
// churnEvery records (the §4.3 run saw the operational node count vary
// between 70 and 102). Inserts from dead monitors are skipped.
func driveInsertsWithChurn(c *cluster.Cluster, recs []timedRec, wallStart uint64, kills []int, killAt []int) []insertSample {
	samples := make([]insertSample, len(recs))
	issued, done := 0, 0
	epoch := c.Net.Now()
	nextKill := 0
	for i, tr := range recs {
		if nextKill < len(killAt) && i >= killAt[nextKill] {
			c.Kill(kills[nextKill])
			nextKill++
		}
		offMs := uint64(tr.node*977+i*131) % 27000
		at := epoch.Add(time.Duration(tr.at-wallStart)*time.Second + time.Duration(offMs)*time.Millisecond)
		if at.After(c.Net.Now()) {
			c.Net.RunFor(at.Sub(c.Net.Now()))
		}
		node := c.Nodes[tr.node%len(c.Nodes)]
		if c.Net.IsDead(node.Addr()) {
			samples[i].ok = false
			continue
		}
		i := i
		start := c.Net.Now()
		samples[i].at = start
		issued++
		err := node.Insert(tr.tag, tr.rec, func(res mind.InsertResult) {
			samples[i].lat = c.Net.Now().Sub(start)
			samples[i].hops = res.Hops
			samples[i].ok = res.OK
			done++
		})
		if err != nil {
			done++
		}
	}
	c.Net.RunUntil(func() bool { return done >= issued }, 200_000_000)
	return samples
}

// fig14Run executes the shared 102-node churn run.
func fig14Run(seed int64, scale float64) (*cluster.Cluster, []insertSample, []querySample, error) {
	c, ix, recs, wallStart, err := setupLarge102(seed, scale)
	if err != nil {
		return nil, nil, nil, err
	}
	// Kill ~10% of nodes spread through the run.
	var kills, killAt []int
	nKills := 10
	for k := 0; k < nKills; k++ {
		kills = append(kills, 7+k*9)
		killAt = append(killAt, (k+1)*len(recs)/(nKills+1))
	}
	samples := driveInsertsWithChurn(c, recs, wallStart, kills, killAt)
	c.Settle(20 * time.Second)

	rng := xorshift(uint64(seed) + 1717)
	spec := querySpec{tag: ix.i1.Tag, bounds: ix.i1.Bounds(), timeAt: 1}
	nq := int(120 * scale)
	if nq < 40 {
		nq = 40
	}
	qs := driveQueries(c, spec, nq, wallStart+uint64(3600*scale), rng.next)
	return c, samples, qs, nil
}

// Fig14 reproduces the 102-node insertion-latency CDF under churn: the
// median stays below a second while the tail stretches long.
func Fig14(seed int64, scale float64) (*Report, error) {
	r := newReport("fig14", "Insertion latency CDF, 102-node overlay with churn")
	_, samples, _, err := fig14Run(seed, scale)
	if err != nil {
		return nil, err
	}
	d := metrics.NewDist()
	failed := 0
	for _, s := range samples {
		if s.ok {
			d.AddDuration(s.lat)
		} else if !s.at.IsZero() {
			failed++
		}
	}
	tb := metrics.NewTable("latency<=_s", "fraction")
	for _, x := range []float64{0.05, 0.1, 0.2, 0.5, 1, 2, 5, 10, 30} {
		tb.Row(x, d.FracAtMost(x))
	}
	r.table(tb)
	s := d.Summarize()
	r.Values["median_s"] = s.Median
	r.Values["p99_s"] = s.P99
	r.Values["inserted"] = float64(s.N)
	r.Values["failed"] = float64(failed)
	r.notef("paper: median below 1 s with a long tail (re-routing around failures); "+
		"measured median %.3f s, p99 %.2f s, %d failed/timed out", s.Median, s.P99, failed)
	return r, nil
}

// Fig15 reproduces the hop-count distributions at 102 nodes: nearly 90%
// of insertions within 5 overlay hops (some take more when re-routed
// around failures), and queries visiting at most ~12 nodes.
func Fig15(seed int64, scale float64) (*Report, error) {
	r := newReport("fig15", "Insertion hops and query cost, 102-node overlay")
	_, samples, qs, err := fig14Run(seed, scale)
	if err != nil {
		return nil, err
	}
	hops := metrics.NewDist()
	for _, s := range samples {
		if s.ok {
			hops.Add(float64(s.hops))
		}
	}
	tb := metrics.NewTable("insert_hops<=", "fraction")
	for _, k := range []float64{1, 2, 3, 4, 5, 7, 9, 12, 20} {
		tb.Row(int(k), hops.FracAtMost(k))
	}
	r.table(tb)

	cost := metrics.NewDist()
	for _, q := range qs {
		if q.complete {
			cost.Add(float64(q.responders))
		}
	}
	tb2 := metrics.NewTable("query_nodes<=", "fraction")
	for _, k := range []float64{1, 2, 3, 5, 8, 12, 20} {
		tb2.Row(int(k), cost.FracAtMost(k))
	}
	r.table(tb2)
	r.Values["insert_hops_le5"] = hops.FracAtMost(5)
	r.Values["insert_hops_max"] = hops.Max()
	r.Values["query_nodes_le5"] = cost.FracAtMost(5)
	r.Values["query_nodes_max"] = cost.Max()
	r.notef("paper: ~90%% of insertions ≤5 hops, some exceed the diameter when re-routed; 90%% of "+
		"queries visit <5 nodes, max 12; measured: %.0f%% ≤5 hops, %.0f%% of queries ≤5 nodes (max %.0f)",
		100*hops.FracAtMost(5), 100*cost.FracAtMost(5), cost.Max())
	return r, nil
}
