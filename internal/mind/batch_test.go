package mind_test

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"mind/internal/cluster"
	"mind/internal/mind"
	"mind/internal/schema"
)

// insertRecords drives nrecs records through InsertBatch in groups of
// batchSize from rotating origin nodes and returns how many acked OK.
func insertRecords(t *testing.T, c *cluster.Cluster, tag string, seed int64, nrecs, batchSize int) int {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	ok := 0
	origin := 0
	for off := 0; off < nrecs; off += batchSize {
		n := batchSize
		if off+n > nrecs {
			n = nrecs - off
		}
		recs := make([]schema.Record, n)
		for i := range recs {
			recs[i] = randRec(r)
		}
		res, _, err := c.InsertBatchWait(origin%len(c.Nodes), tag, recs)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != n {
			t.Fatalf("got %d results for %d records", len(res), n)
		}
		for _, rr := range res {
			if rr.OK {
				ok++
			}
		}
		origin++
	}
	return ok
}

func TestInsertBatchStoresAndQueries(t *testing.T) {
	c := mkCluster(t, 16, 5, nil) // batching off: grouped envelopes only
	sch := testSchema()
	if err := c.CreateIndex(sch); err != nil {
		t.Fatal(err)
	}
	const nrecs = 120
	if ok := insertRecords(t, c, sch.Tag, 99, nrecs, 24); ok != nrecs {
		t.Fatalf("acked %d/%d batched inserts", ok, nrecs)
	}
	qr, _, err := c.QueryWait(3, sch.Tag, fullRect())
	if err != nil {
		t.Fatal(err)
	}
	if !qr.Complete || len(qr.Records) != nrecs {
		t.Fatalf("query after batch insert: complete=%v records=%d want %d",
			qr.Complete, len(qr.Records), nrecs)
	}
}

func TestInsertBatchEdgeCases(t *testing.T) {
	c := mkCluster(t, 4, 6, nil)
	sch := testSchema()
	if err := c.CreateIndex(sch); err != nil {
		t.Fatal(err)
	}
	// Unknown index errors.
	if err := c.Nodes[0].InsertBatch("ghost", []schema.Record{{1, 2, 3, 4}}, nil); err == nil {
		t.Error("unknown index accepted")
	}
	// A bad record rejects the whole batch before anything is sent.
	bad := []schema.Record{{1, 2, 3, 4}, {1, 2}}
	if err := c.Nodes[0].InsertBatch(sch.Tag, bad, nil); err == nil {
		t.Error("short record accepted")
	}
	// Empty batch completes immediately.
	called := false
	if err := c.Nodes[0].InsertBatch(sch.Tag, nil, func(rs []mind.InsertResult) {
		called = true
		if rs != nil {
			t.Errorf("empty batch results = %v", rs)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Error("empty-batch callback did not fire")
	}
	// Fire-and-forget (nil callback) still stores.
	if err := c.Nodes[1].InsertBatch(sch.Tag, []schema.Record{{7, 7, 7, 7}}, nil); err != nil {
		t.Fatal(err)
	}
	c.Settle(2 * time.Second)
	qr, _, err := c.QueryWait(0, sch.Tag, fullRect())
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Records) != 1 {
		t.Fatalf("stored %d records, want 1", len(qr.Records))
	}
}

// TestBatchingReducesTransportSends runs the same workload with and
// without coalescing and checks the acceptance criterion: fewer
// transport sends per record, and mean batch occupancy > 1.
func TestBatchingReducesTransportSends(t *testing.T) {
	const nrecs = 200
	run := func(batch bool) (sends uint64, stats mind.Stats, cl *cluster.Cluster) {
		c := mkCluster(t, 16, 7, func(o *cluster.Options) {
			if batch {
				o.Node.BatchMaxMsgs = 32
			}
		})
		sch := testSchema()
		if err := c.CreateIndex(sch); err != nil {
			t.Fatal(err)
		}
		base := c.Net.Stats().Sent
		if ok := insertRecords(t, c, sch.Tag, 11, nrecs, 32); ok != nrecs {
			t.Fatalf("batch=%v: acked %d/%d", batch, ok, nrecs)
		}
		var agg mind.Stats
		for _, nd := range c.Nodes {
			s := nd.Stats()
			agg.BatchesSent += s.BatchesSent
			agg.BatchesRecv += s.BatchesRecv
			agg.BatchedMsgs += s.BatchedMsgs
			agg.BatchBytesSaved += s.BatchBytesSaved
		}
		return c.Net.Stats().Sent - base, agg, c
	}

	plainSends, plainStats, _ := run(false)
	batchSends, batchStats, c := run(true)
	if batchSends >= plainSends {
		t.Errorf("coalescing did not reduce transport sends: %d >= %d", batchSends, plainSends)
	}
	if batchStats.BatchesSent == 0 || batchStats.BatchesRecv == 0 {
		t.Fatalf("no envelopes flowed: %+v", batchStats)
	}
	occ := float64(batchStats.BatchedMsgs) / float64(batchStats.BatchesSent)
	if occ <= 1 {
		t.Errorf("mean batch occupancy %.2f, want > 1", occ)
	}
	if batchStats.BatchBytesSaved == 0 {
		t.Error("bytes-saved counter never moved")
	}
	// The unbatched run may still wrap InsertBatch groups; per-node
	// occupancy must be well-formed either way.
	for _, nd := range c.Nodes {
		if s := nd.Stats(); s.BatchesSent > 0 && (math.IsNaN(s.BatchOccupancy) || s.BatchOccupancy < 1) {
			t.Errorf("node %s occupancy %v with %d batches", nd.Addr(), s.BatchOccupancy, s.BatchesSent)
		}
	}
	_ = plainStats
}

// TestBatchingPreservesQueryResults checks end-to-end equivalence: the
// full query result set is identical with coalescing on and off, and
// the replication fan-out still reaches replica stores.
func TestBatchingPreservesQueryResults(t *testing.T) {
	results := make(map[bool]int)
	replicas := make(map[bool]int)
	for _, batch := range []bool{false, true} {
		c := mkCluster(t, 12, 9, func(o *cluster.Options) {
			if batch {
				o.Node.BatchMaxMsgs = 16
				o.Node.BatchLinger = 2 * time.Millisecond
			}
		})
		sch := testSchema()
		if err := c.CreateIndex(sch); err != nil {
			t.Fatal(err)
		}
		const nrecs = 96
		if ok := insertRecords(t, c, sch.Tag, 21, nrecs, 16); ok != nrecs {
			t.Fatalf("batch=%v: acked %d/%d", batch, ok, nrecs)
		}
		c.Settle(3 * time.Second) // drain replication fan-out
		qr, _, err := c.QueryWait(5, sch.Tag, fullRect())
		if err != nil {
			t.Fatal(err)
		}
		if !qr.Complete {
			t.Fatalf("batch=%v: incomplete query", batch)
		}
		results[batch] = len(qr.Records)
		for _, nd := range c.Nodes {
			replicas[batch] += nd.ReplicaRecords(sch.Tag)
		}
	}
	if results[true] != results[false] {
		t.Errorf("result sets differ: batched=%d plain=%d", results[true], results[false])
	}
	if replicas[true] == 0 {
		t.Error("no replicas stored with batching on")
	}
}

// TestBatchLingerFlushesOnClock pins the clock-driven flush: with a
// long linger and a threshold that is never reached, messages must not
// leave before the linger elapses, and must leave after.
func TestBatchLingerFlushesOnClock(t *testing.T) {
	c := mkCluster(t, 8, 13, func(o *cluster.Options) {
		o.Node.BatchMaxMsgs = 1000 // never reached
		o.Node.BatchLinger = 500 * time.Millisecond
	})
	sch := testSchema()
	if err := c.CreateIndex(sch); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(31))
	acked := 0
	for i := 0; i < 10; i++ {
		if err := c.Nodes[0].Insert(sch.Tag, randRec(r), func(res mind.InsertResult) {
			if res.OK {
				acked++
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Records owned by the origin itself ack synchronously without
	// touching the network; everything else is stuck in the buffer.
	local := acked
	if local == 10 {
		t.Skip("all records landed on the origin; nothing to coalesce")
	}
	// Well within the linger nothing has flushed, so no further acks.
	c.Settle(100 * time.Millisecond)
	if acked != local {
		t.Fatalf("%d acks before linger elapsed (expected %d local)", acked, local)
	}
	c.Settle(5 * time.Second)
	if acked != 10 {
		t.Fatalf("acked %d/10 after linger", acked)
	}
}

// TestFlushBatchesImmediate pins the manual flush path used on Close.
func TestFlushBatchesImmediate(t *testing.T) {
	c := mkCluster(t, 8, 17, func(o *cluster.Options) {
		o.Node.BatchMaxMsgs = 1000
		o.Node.BatchLinger = time.Hour // effectively never
	})
	sch := testSchema()
	if err := c.CreateIndex(sch); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(37))
	acked := 0
	for i := 0; i < 10; i++ {
		if err := c.Nodes[0].Insert(sch.Tag, randRec(r), func(res mind.InsertResult) {
			if res.OK {
				acked++
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	local := acked // origin-owned records ack synchronously
	c.Settle(time.Second)
	if acked != local {
		t.Fatalf("%d acks leaked past an hour-long linger (expected %d local)", acked, local)
	}
	// Flush every node each round: acks and forwarded hops also buffer.
	done := func() bool { return acked == 10 }
	for i := 0; i < 20 && !done(); i++ {
		for _, nd := range c.Nodes {
			nd.FlushBatches()
		}
		c.Settle(time.Second)
	}
	if !done() {
		t.Fatalf("acked %d/10 after explicit flushes", acked)
	}
}
