package mind

import (
	"mind/internal/bitstr"
	"mind/internal/embed"
	"mind/internal/schema"
)

// coverSet tracks which code-space regions of a query have been answered.
// The originator adds each response's cover code; sibling regions
// collapse into their parent, so complete coverage of the query region
// reduces to containing a prefix of it (§3.6: the originator determines
// completion by examining which nodes responded).
type coverSet struct {
	covered map[bitstr.Code]bool
}

func newCoverSet() *coverSet {
	return &coverSet{covered: make(map[bitstr.Code]bool)}
}

// Add records a covered region and collapses complete sibling pairs.
func (c *coverSet) Add(code bitstr.Code) {
	// Already implied by a shallower covered region?
	for k := code; ; {
		if c.covered[k] {
			return
		}
		if k.IsEmpty() {
			break
		}
		k = k.Parent()
	}
	for {
		c.covered[code] = true
		if code.IsEmpty() {
			return
		}
		sib := code.Sibling()
		if !c.covered[sib] {
			return
		}
		delete(c.covered, code)
		delete(c.covered, sib)
		code = code.Parent()
	}
}

// Covers reports whether the region is fully covered.
func (c *coverSet) Covers(region bitstr.Code) bool {
	for k := region; ; {
		if c.covered[k] {
			return true
		}
		if k.IsEmpty() {
			return false
		}
		k = k.Parent()
	}
}

// Len returns the number of stored (collapsed) cover codes.
func (c *coverSet) Len() int { return len(c.covered) }

// hasExtension reports whether any covered code lies strictly inside the
// region — i.e. descending could still find coverage.
func (c *coverSet) hasExtension(region bitstr.Code) bool {
	for k := range c.covered {
		if region.IsPrefixOf(k) {
			return true
		}
	}
	return false
}

// CoversRect reports whether the covered codes account for every part of
// the region that intersects the query rectangle. Sub-queries are only
// issued for rect-intersecting regions (§3.6), so regions disjoint from
// the rect are complete by vacuity; this walk descends the cut tree,
// skipping such regions, until every intersecting branch hits a covered
// code.
func (c *coverSet) CoversRect(tree *embed.Tree, rect schema.Rect, region bitstr.Code) bool {
	// Clamp the rect into the tree bounds once (out-of-bound query edges
	// behave as the topmost coordinate, like clamped records).
	q := rect.Clone()
	bounds := tree.Bounds()
	for i := range q.Lo {
		if q.Lo[i] > bounds[i] {
			q.Lo[i] = bounds[i]
		}
		if q.Hi[i] > bounds[i] {
			q.Hi[i] = bounds[i]
		}
	}
	return c.coversRect(tree, q, region)
}

// MissingRegions collects up to limit uncovered rect-intersecting
// regions under the given region — diagnostics for incomplete queries.
func (c *coverSet) MissingRegions(tree *embed.Tree, rect schema.Rect, region bitstr.Code, limit int) []bitstr.Code {
	var out []bitstr.Code
	var walk func(r bitstr.Code)
	walk = func(r bitstr.Code) {
		if len(out) >= limit || c.Covers(r) {
			return
		}
		if r.Len() >= bitstr.MaxLen || !c.hasExtension(r) {
			out = append(out, r)
			return
		}
		for _, child := range tree.Children(r) {
			if child.Rect.Intersects(rect) {
				walk(child.Code)
			}
		}
	}
	walk(region)
	return out
}

func (c *coverSet) coversRect(tree *embed.Tree, rect schema.Rect, region bitstr.Code) bool {
	if c.Covers(region) {
		return true
	}
	if region.Len() >= bitstr.MaxLen || !c.hasExtension(region) {
		return false
	}
	for _, child := range tree.Children(region) {
		if !child.Rect.Intersects(rect) {
			continue
		}
		if !c.coversRect(tree, rect, child.Code) {
			return false
		}
	}
	return true
}
