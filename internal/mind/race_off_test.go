//go:build !race

package mind

// raceDetectorEnabled reports whether the binary was built with the
// race detector. Tests that depend on sync.Pool retention semantics
// check it: under -race the runtime deliberately randomizes pool
// behavior (Put drops items, the fast slot is bypassed), so buffer
// residency cannot be observed.
const raceDetectorEnabled = false
