package experiments

import (
	"fmt"
	"time"

	"mind/internal/cluster"
	"mind/internal/flowgen"
	"mind/internal/metrics"
	"mind/internal/mind"
	"mind/internal/schema"
	"mind/internal/transport/simnet"
)

// Fig16 reproduces the robustness experiment (§4.4): a 102-node local
// cluster holding Index-1 data at replication levels 0, 1 and "full"
// (one replica per hypercube neighbor level); random nodes are failed in
// increments and the fraction of successfully completed queries is
// measured after each increment.
//
// Shape to reproduce: without replication success decays roughly
// linearly with failures; with one replica the system rides out ~15% of
// failures; with full replication it survives beyond 50%.
func Fig16(seed int64, scale float64) (*Report, error) {
	r := newReport("fig16", "Query success vs node failures at replication 0 / 1 / full")
	fracs := []float64{0, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50}
	levels := []struct {
		name string
		m    int
	}{
		{"none", 0},
		{"one", 1},
		{"full", mind.ReplicateAll},
	}
	tb := metrics.NewTable("failed_frac", "success_none", "success_one", "success_full")
	results := make(map[string][]float64)

	for _, lv := range levels {
		success, err := fig16Level(seed, scale, lv.m)
		if err != nil {
			return nil, err
		}
		results[lv.name] = success
	}
	for i, f := range fracs {
		tb.Row(f, results["none"][i], results["one"][i], results["full"][i])
		r.Values[fmt.Sprintf("none_%d", int(f*100))] = results["none"][i]
		r.Values[fmt.Sprintf("one_%d", int(f*100))] = results["one"][i]
		r.Values[fmt.Sprintf("full_%d", int(f*100))] = results["full"][i]
	}
	r.table(tb)
	r.notef("paper: no replication decays ~linearly; one replica survives 15%% failures; full "+
		"replication survives >50%%. measured at 15%%: none %.2f, one %.2f, full %.2f",
		r.Values["none_15"], r.Values["one_15"], r.Values["full_15"])
	return r, nil
}

// fig16Level runs the kill-escalation for one replication level and
// returns the success fraction at each failure step. A query succeeds
// when it completes AND returns exactly the records an oracle over the
// full inserted set predicts — i.e. no data was lost to the failures.
// All three levels use identical overlay construction, workload and kill
// sequence, so the curves differ only in the replication policy.
func fig16Level(seed int64, scale float64, repl int) ([]float64, error) {
	n := 102
	routers := fabricateRouters(n)
	nodeCfg := nodeConfig(seed)
	nodeCfg.Replication = repl
	nodeCfg.QueryTimeout = 15 * time.Second
	c, err := cluster.New(cluster.Options{
		Routers: routers,
		Seed:    seed,
		Sim: simnet.Config{
			Seed:           seed,
			DefaultLatency: 2 * time.Millisecond, // local cluster, per §4.4
			ServiceTime:    2 * time.Millisecond,
		},
		Node: nodeCfg,
	})
	if err != nil {
		return nil, err
	}
	ix := paperIndices(86400 * 4)
	if err := c.CreateIndex(ix.i1); err != nil {
		return nil, err
	}
	c.Settle(10 * time.Second)

	// Insert the Index-1 workload quickly (latency is not measured here)
	// and keep the acked records as the recall oracle.
	wallStart := uint64(10 * 3600)
	dur := uint64(1200 * scale)
	if dur < 600 {
		dur = 600
	}
	gcfg := flowgen.DefaultConfig(seed + 5)
	gcfg.Routers = routers
	gcfg.BaseFlowsPerSec = 60 * scale
	if gcfg.BaseFlowsPerSec < 20 {
		gcfg.BaseFlowsPerSec = 20
	}
	g := flowgen.New(gcfg)
	recs := buildWorkload(g, wallStart, wallStart+dur, ix, true, false, false)
	samples := driveInserts(c, recs, wallStart)
	var oracle []schema.Record
	for i, s := range samples {
		if s.ok {
			oracle = append(oracle, recs[i].rec)
		}
	}
	c.Settle(5 * time.Second)

	// Failure escalation: 0%, 5%, ..., 50%. A deterministic shuffle
	// picks victims; settles between increments let detection (including
	// the liveness-probe confirmation round) and sibling takeover run,
	// as gradual failures would in a deployment.
	rng := xorshift(uint64(seed)*31 + 40503)
	perm := make([]int, n-1)
	for i := range perm {
		perm[i] = i + 1 // never kill node 0: it is the query origin pool seed
	}
	for i := len(perm) - 1; i > 0; i-- {
		j := int(rng.next() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	fracs := []float64{0, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50}
	killed := 0
	var success []float64
	queriesPer := int(45 * scale)
	if queriesPer < 20 {
		queriesPer = 20
	}
	failAfter := nodeCfg.Overlay.FailAfter
	for _, f := range fracs {
		want := int(f * float64(n))
		for killed < want {
			c.Kill(perm[killed])
			killed++
		}
		// Detection takes up to 2×FailAfter (silence + liveness-probe
		// confirmation); cascaded takeovers and relocations need several
		// rounds at high failure fractions. Settle until the live codes
		// tile the space again (the overlay's own stabilization), with a
		// bound.
		c.Settle(6*failAfter + 10*time.Second)
		for round := 0; round < 12; round++ {
			tile := 0.0
			for _, nd := range c.Nodes {
				if !c.Net.IsDead(nd.Addr()) {
					tile += 1 / float64(uint64(1)<<uint(nd.Code().Len()))
				}
			}
			if tile > 0.9999 {
				break
			}
			c.Settle(4 * failAfter)
		}

		ok, total := 0, 0
		for q := 0; q < queriesPer; q++ {
			from := int(rng.next() % uint64(n))
			for c.Net.IsDead(c.Nodes[from].Addr()) {
				from = (from + 1) % n
			}
			// §4.1's query mix: uniformly sized destination range,
			// fanout above a varying floor, the run's time window —
			// selective enough that each query touches a handful of
			// regions (per-query success then reflects the availability
			// of exactly those regions, the paper's Fig 16 semantics),
			// yet dense enough to hit stored data.
			a, b := rng.next()%(1<<32), rng.next()%(1<<32)
			if a > b {
				a, b = b, a
			}
			floor := 16 + rng.next()%32
			rect := schema.Rect{
				Lo: []uint64{a, wallStart, floor},
				Hi: []uint64{b, wallStart + dur, schema.FanoutBound},
			}
			want := 0
			for _, rec := range oracle {
				if rect.ContainsRecord(ix.i1, rec) {
					want++
				}
			}
			res, _, err := c.QueryWait(from, ix.i1.Tag, rect)
			if err != nil {
				continue
			}
			total++
			if res.Complete && len(res.Records) == want {
				ok++
			}
		}
		if total == 0 {
			success = append(success, 0)
		} else {
			success = append(success, float64(ok)/float64(total))
		}
	}
	return success, nil
}

// driveQueriesFrom is driveQueries pinned to one origin node.
func driveQueriesFrom(c *cluster.Cluster, spec querySpec, count int, now uint64, rnd func() uint64, from int) []querySample {
	samples := make([]querySample, 0, count)
	for q := 0; q < count; q++ {
		rect := rectFor(spec, now, rnd)
		res, lat, err := c.QueryWait(from, spec.tag, rect)
		if err != nil {
			continue
		}
		samples = append(samples, querySample{
			at: c.Net.Now(), lat: lat, responders: res.Responders,
			maxHops: res.MaxHops, complete: res.Complete, records: len(res.Records),
		})
	}
	return samples
}

// rectFor builds one §4.1-style query rectangle: uniform random ranges
// on every attribute except the timestamp, which covers the last five
// minutes.
func rectFor(spec querySpec, now uint64, rnd func() uint64) schema.Rect {
	rect := schema.Rect{Lo: make([]uint64, len(spec.bounds)), Hi: make([]uint64, len(spec.bounds))}
	for d := range spec.bounds {
		if d == spec.timeAt {
			lo := uint64(0)
			if now > 300 {
				lo = now - 300
			}
			rect.Lo[d], rect.Hi[d] = lo, now
			continue
		}
		a, b := rnd()%(spec.bounds[d]+1), rnd()%(spec.bounds[d]+1)
		if a > b {
			a, b = b, a
		}
		rect.Lo[d], rect.Hi[d] = a, b
	}
	return rect
}
