// Package ingest is the streaming ingest front-end: it takes raw flow
// frames (from a socket, or replayed flowgen traffic), parses them
// zero-alloc into pooled records, and feeds per-core sharded ingestion
// workers through bounded SPSC ring buffers into the node's coalesced
// InsertBatch path. Admission control is explicit — a full ring either
// drops the record (counted) or blocks the producer, configurable — and
// the engine exposes a backpressure signal the listener reflects to
// senders when the node falls behind.
package ingest

import (
	"sync/atomic"

	"mind/internal/schema"
)

// item is one admitted record waiting for a shard worker.
type item struct {
	tag string // interned index tag; shared, never per-record allocated
	rec schema.Record
}

// ring is a bounded single-producer single-consumer queue of items. The
// producer owns tail, the consumer owns head; each side only ever
// stores its own counter and loads the other's, so the two atomics are
// the whole synchronization protocol. The engine serializes concurrent
// connection handlers on a per-shard mutex so each ring still sees one
// logical producer (the common case — one streaming connection — takes
// that mutex uncontended).
//
// Counters are monotonically increasing and indexed modulo the
// power-of-two capacity: head == tail means empty, tail-head == cap
// means full, so no slot is wasted and wraparound needs no special
// casing (uint64 overflow preserves the difference).
type ring struct {
	buf  []item
	mask uint64
	_    [48]byte // keep head and tail on separate cache lines
	head atomic.Uint64
	_    [56]byte
	tail atomic.Uint64
}

// newRing returns a ring with capacity rounded up to a power of two (at
// least 2).
func newRing(capacity int) *ring {
	size := 2
	for size < capacity {
		size <<= 1
	}
	return &ring{buf: make([]item, size), mask: uint64(size - 1)}
}

// push appends one item; it reports false when the ring is full.
// Producer-side only.
func (r *ring) push(it item) bool {
	t := r.tail.Load()
	if t-r.head.Load() >= uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask] = it
	r.tail.Store(t + 1)
	return true
}

// pop removes the oldest item; ok is false when the ring is empty.
// Consumer-side only.
func (r *ring) pop() (it item, ok bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return item{}, false
	}
	it = r.buf[h&r.mask]
	r.buf[h&r.mask] = item{} // drop the record reference for the GC
	r.head.Store(h + 1)
	return it, true
}

// len returns the number of queued items (racy but monotonic-consistent
// when called from either end).
func (r *ring) len() int {
	t := r.tail.Load()
	h := r.head.Load()
	if t < h {
		return 0
	}
	return int(t - h)
}

// capacity returns the ring's slot count.
func (r *ring) capacity() int { return len(r.buf) }
