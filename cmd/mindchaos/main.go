// mindchaos runs one deterministic chaos schedule against a simulated
// MIND cluster and reports invariant violations and oracle divergence.
//
// Generate-and-run mode (everything derives from -seed):
//
//	mindchaos -seed 42 -nodes 10 -events 5
//
// Replay mode (e.g. a schedule dumped by a failing run or CI artifact):
//
//	mindchaos -schedule chaos-fail-42.json
//
// The process exits 1 when the run violates any invariant, after
// dumping the schedule to -dump (default chaos-fail-<seed>.json) so the
// failure can be replayed and shrunk by hand-editing the JSON.
package main

import (
	"flag"
	"fmt"
	"os"

	"mind/internal/chaos"
)

func main() {
	var (
		seed       = flag.Int64("seed", 1, "schedule seed (generate mode)")
		schedule   = flag.String("schedule", "", "replay a dumped schedule JSON instead of generating")
		nodes      = flag.Int("nodes", 0, "cluster size (0: default)")
		events     = flag.Int("events", 0, "fault/workload/check epochs to generate (0: default)")
		repl       = flag.Int("replication", 0, "replication degree (0: default, -1: all levels)")
		checkEvery = flag.Int("check-every", 1, "run the invariant suite on every k-th check event")
		stopFirst  = flag.Bool("stop-on-violation", false, "abort the schedule at the first violation")
		dump       = flag.String("dump", "", "where to write the schedule on failure (default chaos-fail-<seed>.json)")
		verbose    = flag.Bool("v", false, "stream the event log while running")
	)
	flag.Parse()

	var s *chaos.Schedule
	if *schedule != "" {
		data, err := os.ReadFile(*schedule)
		if err != nil {
			fatal(err)
		}
		if s, err = chaos.Load(data); err != nil {
			fatal(err)
		}
	} else {
		s = chaos.Generate(*seed, chaos.GenConfig{
			Nodes:       *nodes,
			Epochs:      *events,
			Replication: *repl,
		})
	}

	opt := chaos.Options{CheckEvery: *checkEvery, StopOnViolation: *stopFirst}
	if *verbose {
		opt.Log = os.Stdout
	}
	res, err := chaos.Run(s, opt)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("schedule: seed=%d nodes=%d repl=%d events=%d\n",
		s.Seed, s.Nodes, s.Replication, len(s.Events))
	fmt.Printf("run: checks=%d inserts=%d (failed %d) queries=%d (incomplete %d) oracle=%d records\n",
		res.Checks, res.Inserts, res.InsertFailures, res.Queries,
		res.IncompleteQueries, res.OracleRecords)
	fmt.Printf("digest: %016x\n", res.Digest)

	if len(res.Violations) == 0 {
		fmt.Println("invariants: all held")
		return
	}
	fmt.Printf("invariants: %d violations\n", len(res.Violations))
	for _, v := range res.Violations {
		fmt.Printf("  event %d [%s] %s\n", v.Event, v.Invariant, v.Detail)
	}
	out := *dump
	if out == "" {
		out = fmt.Sprintf("chaos-fail-%d.json", s.Seed)
	}
	if data, err := s.Dump(); err == nil {
		if err := os.WriteFile(out, data, 0o644); err == nil {
			fmt.Printf("schedule dumped to %s (replay: mindchaos -schedule %s)\n", out, out)
		}
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mindchaos:", err)
	os.Exit(1)
}
