// Package transport abstracts how MIND nodes exchange encoded wire
// messages and observe time. Two implementations exist: simnet, a
// deterministic discrete-event network with a configurable wide-area
// latency model (every experiment and test runs on it), and tcpnet, a
// real TCP transport for multi-process deployment.
//
// The abstraction is deliberately datagram-like and asynchronous: Send
// never blocks on the receiver and delivery is not guaranteed. MIND's
// protocol layers (retries, heartbeats, expanding-ring recovery) own
// reliability, exactly as the paper's prototype owns it above raw
// connections.
package transport

import "time"

// Handler consumes one received message. Implementations of Endpoint
// may invoke it from internal goroutines; receivers must synchronize
// their own state.
type Handler func(from string, msg []byte)

// Endpoint is one node's attachment to the network.
type Endpoint interface {
	// Addr returns this endpoint's stable address.
	Addr() string
	// Send queues msg for delivery to the endpoint addressed by to.
	// It returns an error only for immediately-detectable failures
	// (closed endpoint, unknown peer on a connected transport); silent
	// loss in transit is always possible.
	Send(to string, msg []byte) error
	// SetHandler installs the receive callback. Must be called before
	// any delivery is expected.
	SetHandler(h Handler)
	// Close detaches the endpoint; further sends fail and deliveries
	// stop.
	Close() error
}

// Timer is a cancelable pending callback.
type Timer interface {
	// Stop cancels the timer if it has not fired; it reports whether the
	// call prevented the callback from running.
	Stop() bool
}

// Clock abstracts time so protocol code runs identically under the
// virtual clock of the simulator and the real clock of a deployment.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// AfterFunc schedules f to run after d. f runs on the clock's
	// dispatch context (the simulator event loop, or a timer goroutine).
	AfterFunc(d time.Duration, f func()) Timer
}

// RealClock adapts the standard library clock.
type RealClock struct{}

// Now returns time.Now().
func (RealClock) Now() time.Time { return time.Now() }

// AfterFunc wraps time.AfterFunc.
func (RealClock) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

type realTimer struct{ t *time.Timer }

func (rt realTimer) Stop() bool { return rt.t.Stop() }
