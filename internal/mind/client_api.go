package mind

import (
	"mind/internal/wire"
)

// Client-facing RPC handling: §3.2's interface invoked remotely. A
// client outside the overlay sends ClientInsert / ClientQuery /
// ClientCreateIndex / ClientDropIndex to any node; the node executes the
// operation on the client's behalf and replies directly.

func (n *Node) handleClientInsert(from string, m *wire.ClientInsert) {
	err := n.Insert(m.Index, m.Rec, func(res InsertResult) {
		ack := &wire.ClientAck{ReqID: m.ReqID, OK: res.OK, Hops: uint8(res.Hops)}
		if res.Err != nil {
			ack.Error = res.Err.Error()
		}
		n.send(from, ack)
	})
	if err != nil {
		n.send(from, &wire.ClientAck{ReqID: m.ReqID, OK: false, Error: err.Error()})
	}
}

func (n *Node) handleClientQuery(from string, m *wire.ClientQuery) {
	err := n.Query(m.Index, m.Rect, func(res QueryResult) {
		resp := &wire.ClientQueryResp{
			ReqID:      m.ReqID,
			Complete:   res.Complete,
			Responders: uint32(res.Responders),
		}
		for _, rec := range res.Records {
			resp.Recs = append(resp.Recs, rec)
		}
		n.send(from, resp)
	})
	if err != nil {
		n.send(from, &wire.ClientQueryResp{ReqID: m.ReqID, Complete: false})
	}
}

func (n *Node) handleClientCreateIndex(from string, m *wire.ClientCreateIndex) {
	err := n.CreateIndex(m.Schema, nil)
	ack := &wire.ClientAck{ReqID: m.ReqID, OK: err == nil}
	if err != nil {
		ack.Error = err.Error()
	}
	n.send(from, ack)
}

func (n *Node) handleClientDropIndex(from string, m *wire.ClientDropIndex) {
	err := n.DropIndex(m.Tag)
	ack := &wire.ClientAck{ReqID: m.ReqID, OK: err == nil}
	if err != nil {
		ack.Error = err.Error()
	}
	n.send(from, ack)
}
