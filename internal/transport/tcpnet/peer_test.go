package tcpnet

import (
	"net"
	"testing"
	"time"
)

// fastCfg keeps connection-management timing test-sized.
func fastCfg() Config {
	return Config{
		DialTimeout:    500 * time.Millisecond,
		WriteTimeout:   300 * time.Millisecond,
		SendQueue:      8,
		EnqueueTimeout: 150 * time.Millisecond,
		ReconnectBase:  5 * time.Millisecond,
		ReconnectMax:   50 * time.Millisecond,
		FailThreshold:  2,
	}
}

// TestPeerLifecycle walks one managed peer through its full state
// machine: dialing → dead against a refused port (with the dial counter
// bounded by backoff, not one dial per frame), then → healthy when a
// listener appears on that address, with the recovery counted as a
// reconnect.
func TestPeerLifecycle(t *testing.T) {
	a, err := ListenConfig("127.0.0.1:0", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// Reserve an address, then free it so dials are refused.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	target := l.Addr().String()
	l.Close()

	// Pump frames until the circuit opens.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("circuit never opened")
		}
		a.Send(target, []byte("x"))
		if st, ok := a.PeerState(target); ok && st == StateDead {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// With ReconnectMax 50ms, five seconds of failures cannot have
	// produced more than ~1s/5ms worth of dials; the point is that dial
	// attempts are clocked by backoff, not by offered frames.
	st := a.NetStats()
	if len(st.Peers) != 1 {
		t.Fatalf("peer table: %+v", st.Peers)
	}
	ps := st.Peers[0]
	if ps.State != "dead" || ps.ConsecFails < 2 {
		t.Fatalf("dead peer stats: %+v", ps)
	}
	if ps.Dials == 0 || ps.Dials > 200 {
		t.Fatalf("dials = %d, want bounded by backoff", ps.Dials)
	}
	if ps.DropsWrite+ps.DropsBackoff == 0 {
		t.Fatal("no drops counted for an unreachable peer")
	}

	// Bring the peer up on the reserved address: background probing must
	// recover the connection and deliver.
	b, err := ListenConfig(target, fastCfg())
	if err != nil {
		t.Skipf("rebind %s: %v (port taken)", target, err)
	}
	defer b.Close()
	got := make(chan struct{}, 1)
	b.SetHandler(func(string, []byte) {
		select {
		case got <- struct{}{}:
		default:
		}
	})
	deadline = time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("peer never recovered after listener came up")
		}
		a.Send(target, []byte("y"))
		if st, ok := a.PeerState(target); ok && st == StateHealthy {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery after recovery")
	}
	ps = a.NetStats().Peers[0]
	if ps.Reconnects == 0 {
		t.Fatalf("recovery not counted as reconnect: %+v", ps)
	}
	if ps.ConsecFails != 0 {
		t.Fatalf("consec fails not reset on recovery: %+v", ps)
	}
}

// TestListenerRestartMidTraffic restarts the receiving endpoint while
// the sender streams frames at it. Delivery must resume on the restarted
// listener, the outage must be visible in the reconnect/eviction
// counters, and the dial count must stay bounded by backoff rather than
// scaling with the frames offered during the outage.
func TestListenerRestartMidTraffic(t *testing.T) {
	a, err := ListenConfig("127.0.0.1:0", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenConfig("127.0.0.1:0", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	bAddr := b.Addr()
	got := make(chan struct{}, 1024)
	handler := func(string, []byte) {
		select {
		case got <- struct{}{}:
		default:
		}
	}
	b.SetHandler(handler)

	a.Send(bAddr, []byte("warm"))
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery before restart")
	}

	// Take the listener down and keep the traffic flowing into the
	// outage: frames drop (counted), dials are paced by backoff.
	b.Close()
	for i := 0; i < 200; i++ {
		a.Send(bAddr, []byte("during-outage"))
		time.Sleep(time.Millisecond)
	}

	var b2 *Endpoint
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		b2, err = ListenConfig(bAddr, fastCfg())
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind: %v", err)
	}
	defer b2.Close()
	for len(got) > 0 {
		<-got
	}
	b2.SetHandler(handler)

	deadline = time.Now().Add(5 * time.Second)
	delivered := false
	for time.Now().Before(deadline) && !delivered {
		a.Send(bAddr, []byte("after-restart"))
		select {
		case <-got:
			delivered = true
		case <-time.After(20 * time.Millisecond):
		}
	}
	if !delivered {
		t.Fatal("no delivery after listener restart")
	}

	ps := a.NetStats().Peers[0]
	if ps.State != "healthy" {
		t.Fatalf("peer not healthy after recovery: %+v", ps)
	}
	if ps.Evictions == 0 {
		t.Fatalf("outage left no eviction trace: %+v", ps)
	}
	if ps.Reconnects == 0 {
		t.Fatalf("recovery not counted as reconnect: %+v", ps)
	}
	// 200 frames went into the outage; backoff pacing means dials must be
	// far fewer than frames offered.
	if ps.Dials > 100 {
		t.Fatalf("dials = %d for ~200 offered frames: reconnect storm", ps.Dials)
	}
}

// TestSlowPeerEviction points the sender at a raw TCP listener that
// accepts and then never reads: the socket fills, the per-frame write
// deadline expires, and the connection must be evicted with the stall
// counted — while every Send returns within the bounded enqueue wait
// instead of hanging on the frozen peer.
func TestSlowPeerEviction(t *testing.T) {
	cfg := fastCfg()
	a, err := ListenConfig("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan net.Conn, 4)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			accepted <- c // held open, never read
		}
	}()
	defer func() {
		for {
			select {
			case c := <-accepted:
				c.Close()
			default:
				return
			}
		}
	}()

	// Large frames fill the 64KiB write buffer and the kernel socket
	// buffer quickly; after that writes stall until the deadline.
	frame := make([]byte, 256<<10)
	maxWait := cfg.EnqueueTimeout + cfg.WriteTimeout + time.Second
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("write deadline never fired against a non-reading peer")
		}
		start := time.Now()
		a.Send(l.Addr().String(), frame)
		if d := time.Since(start); d > maxWait {
			t.Fatalf("Send blocked %v, want < %v (bounded sender blocking)", d, maxWait)
		}
		ps := a.NetStats().Peers[0]
		if ps.WriteTimeouts > 0 {
			if ps.Evictions == 0 {
				t.Fatalf("write timeout without eviction: %+v", ps)
			}
			if ps.State == "healthy" {
				t.Fatalf("stalled peer still healthy: %+v", ps)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}
