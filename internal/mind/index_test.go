package mind

import (
	"testing"
	"time"

	"mind/internal/bitstr"
	"mind/internal/embed"
	"mind/internal/schema"
	"mind/internal/wire"
)

func ixSchema() *schema.Schema {
	return &schema.Schema{
		Tag: "ix",
		Attrs: []schema.Attr{
			{Name: "x", Kind: schema.KindUint, Max: 999},
			{Name: "t", Kind: schema.KindTime, Max: 86400 * 10},
			{Name: "y", Kind: schema.KindUint, Max: 999},
			{Name: "p"},
		},
		IndexDims: 3,
	}
}

func newTestIndex() *index {
	sch := ixSchema()
	return newIndex(sch, embed.Uniform(sch.Bounds()))
}

func TestIndexVersionMapping(t *testing.T) {
	ix := newTestIndex()
	if ix.timeAttr != 1 {
		t.Fatalf("timeAttr = %d", ix.timeAttr)
	}
	rec := schema.Record{1, 86400*3 + 7, 2, 3}
	if v := ix.version(rec, 86400); v != 3 {
		t.Errorf("version = %d, want 3", v)
	}
	if v := ix.version(rec, 0); v != 0 {
		t.Errorf("versionSeconds=0 must map to version 0, got %d", v)
	}
	// Index without a time attribute: always version 0.
	sch := &schema.Schema{Tag: "nt", Attrs: []schema.Attr{{Name: "a", Max: 9}}, IndexDims: 1}
	nt := newIndex(sch, embed.Uniform(sch.Bounds()))
	if nt.timeAttr != -1 || nt.version(schema.Record{5}, 86400) != 0 {
		t.Error("no-time index version mapping wrong")
	}
}

func TestQueryVersionsSpan(t *testing.T) {
	ix := newTestIndex()
	rect := schema.Rect{Lo: []uint64{0, 86400 - 10, 0}, Hi: []uint64{999, 2*86400 + 10, 999}}
	vs := ix.queryVersions(rect, 86400)
	if len(vs) != 3 || vs[0] != 0 || vs[2] != 2 {
		t.Fatalf("versions = %v", vs)
	}
	// Bound the explosion on full-range time wildcards.
	wild := schema.Rect{Lo: []uint64{0, 0, 0}, Hi: []uint64{999, ^uint64(0), 999}}
	vs = ix.queryVersions(wild, 1)
	if len(vs) > 4097 {
		t.Fatalf("unbounded version span: %d", len(vs))
	}
}

func TestGroupVersionsByTree(t *testing.T) {
	ix := newTestIndex()
	balanced := embed.Uniform(ix.sch.Bounds())
	ix.vers[2] = balanced
	groups := ix.groupVersionsByTree([]uint32{0, 1, 2, 3})
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	if len(groups[ix.base]) != 3 || len(groups[balanced]) != 1 {
		t.Fatalf("group sizes wrong: %v", groups)
	}
}

func TestIndexDefRoundTrip(t *testing.T) {
	ix := newTestIndex()
	ix.vers[5] = embed.Uniform(ix.sch.Bounds())
	def := ix.def()
	got, err := indexFromDef(def)
	if err != nil {
		t.Fatal(err)
	}
	if got.sch.Tag != "ix" || got.base == nil {
		t.Fatal("def round trip lost schema/base")
	}
	if _, ok := got.vers[5]; !ok {
		t.Fatal("version tree lost")
	}
	// Codes agree after round trip.
	p := []uint64{500, 86400, 250}
	if !got.tree(0).PointCode(p, 10).Equal(ix.tree(0).PointCode(p, 10)) {
		t.Fatal("round-tripped tree disagrees")
	}
	// Bad defs rejected.
	if _, err := indexFromDef(wire.IndexDef{Schema: &schema.Schema{}}); err == nil {
		t.Error("invalid schema accepted")
	}
	bad := def
	bad.Versions = []wire.VersionDef{{Version: 1, Tree: []byte{1, 2, 3}}}
	if _, err := indexFromDef(bad); err == nil {
		t.Error("corrupt tree accepted")
	}
}

func TestIndexDefMissingBaseGetsUniform(t *testing.T) {
	d := wire.IndexDef{Schema: ixSchema()}
	ix, err := indexFromDef(d)
	if err != nil {
		t.Fatal(err)
	}
	if ix.base == nil {
		t.Fatal("no default base tree")
	}
}

func TestStoreRecordDedup(t *testing.T) {
	ix := newTestIndex()
	rec := schema.Record{1, 2, 3, 4}
	if !ix.storeRecord(0, 42, rec) {
		t.Fatal("first store rejected")
	}
	if ix.storeRecord(0, 42, rec) {
		t.Fatal("duplicate RecID accepted (ring double-delivery would duplicate data)")
	}
	if ix.primary.Len() != 1 {
		t.Fatalf("stored = %d", ix.primary.Len())
	}
	// A replica with the same id is in a different dedup namespace.
	ix.storeReplica(bitstr.MustParse("01"), 0, 42, rec)
	if ix.replicas.Len() != 1 {
		t.Fatal("replica with same RecID rejected")
	}
	ix.storeReplica(bitstr.MustParse("01"), 0, 42, rec)
	if ix.replicas.Len() != 1 {
		t.Fatal("duplicate replica accepted")
	}
}

func TestAbsorbReplicas(t *testing.T) {
	ix := newTestIndex()
	owner := ix.base.PointCode([]uint64{10, 10, 10}, 3)
	// Replicas: one inside the owner region, one outside it.
	inside := schema.Record{10, 10, 10, 1}
	var outside schema.Record
	for v := uint64(0); ; v += 37 {
		cand := schema.Record{v % 1000, 20, 900, 2}
		if !owner.IsPrefixOf(ix.base.PointCode(cand.Point(ix.sch), owner.Len())) {
			outside = cand
			break
		}
	}
	ix.storeReplica(owner, 0, 1, inside)
	ix.storeReplica(owner, 0, 2, outside)
	ix.absorbReplicas(owner)
	if ix.primary.Len() != 1 {
		t.Fatalf("absorbed %d records, want exactly the in-region one", ix.primary.Len())
	}
	got := ix.primary.QueryAll(ix.sch.FullRect())
	if got[0][3] != 1 {
		t.Fatal("wrong record absorbed")
	}
	// No-op when no owner matches.
	before := ix.primary.Len()
	ix.absorbReplicas(bitstr.MustParse("111111"))
	if ix.primary.Len() != before {
		t.Fatal("absorb for unknown region moved data")
	}
}

func TestHistoryActive(t *testing.T) {
	ix := newTestIndex()
	now := time.Unix(1000, 0)
	if ix.historyActive(now) {
		t.Fatal("no pointer must be inactive")
	}
	ix.histAddr = "sib"
	ix.histUntil = now.Add(time.Minute)
	if !ix.historyActive(now) {
		t.Fatal("pointer should be active")
	}
	if ix.historyActive(now.Add(2 * time.Minute)) {
		t.Fatal("pointer should expire")
	}
}
