package bitstr

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	if Empty.Len() != 0 || !Empty.IsEmpty() {
		t.Fatalf("Empty not empty: %v", Empty)
	}
	if Empty.String() != "ε" {
		t.Fatalf("Empty.String() = %q", Empty.String())
	}
	if !Empty.IsPrefixOf(MustParse("0110")) {
		t.Fatal("empty code must be prefix of everything")
	}
}

func TestParseString(t *testing.T) {
	cases := []string{"0", "1", "01", "10", "0110", "111111", "0000000000000001"}
	for _, s := range cases {
		c, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if c.String() != s {
			t.Errorf("Parse(%q).String() = %q", s, c.String())
		}
		if c.Len() != len(s) {
			t.Errorf("Parse(%q).Len() = %d", s, c.Len())
		}
	}
	if _, err := Parse("01x"); err == nil {
		t.Error("Parse accepted invalid rune")
	}
	long := make([]byte, MaxLen+1)
	for i := range long {
		long[i] = '0'
	}
	if _, err := Parse(string(long)); err == nil {
		t.Error("Parse accepted overlong code")
	}
}

func TestNewAndUint64(t *testing.T) {
	c := New(0b0110, 4)
	if c.String() != "0110" {
		t.Fatalf("New(0b0110,4) = %s", c)
	}
	if c.Uint64() != 0b0110 {
		t.Fatalf("Uint64 = %b", c.Uint64())
	}
	if got := New(0, 0); !got.IsEmpty() {
		t.Fatal("New(0,0) not empty")
	}
}

func TestBitAppend(t *testing.T) {
	c := Empty.Append(1).Append(0).Append(1)
	if c.String() != "101" {
		t.Fatalf("appended = %s", c)
	}
	for i, want := range []int{1, 0, 1} {
		if c.Bit(i) != want {
			t.Errorf("Bit(%d) = %d, want %d", i, c.Bit(i), want)
		}
	}
}

func TestPrefixParentSibling(t *testing.T) {
	c := MustParse("011010")
	if got := c.Prefix(3); got.String() != "011" {
		t.Errorf("Prefix(3) = %s", got)
	}
	if got := c.Prefix(0); !got.IsEmpty() {
		t.Errorf("Prefix(0) = %s", got)
	}
	if got := c.Parent(); got.String() != "01101" {
		t.Errorf("Parent = %s", got)
	}
	if got := c.Sibling(); got.String() != "011011" {
		t.Errorf("Sibling = %s", got)
	}
	if got := c.Sibling().Sibling(); !got.Equal(c) {
		t.Errorf("Sibling twice = %s", got)
	}
}

func TestFlipAndNeighborCode(t *testing.T) {
	c := MustParse("0110")
	if got := c.FlipBit(0); got.String() != "1110" {
		t.Errorf("FlipBit(0) = %s", got)
	}
	if got := c.FlipBit(3); got.String() != "0111" {
		t.Errorf("FlipBit(3) = %s", got)
	}
	// Neighbor codes per hypercube dimension.
	wants := []string{"1", "00", "010", "0111"}
	for i, w := range wants {
		if got := c.NeighborCode(i); got.String() != w {
			t.Errorf("NeighborCode(%d) = %s, want %s", i, got, w)
		}
	}
}

func TestIsPrefixOf(t *testing.T) {
	a := MustParse("01")
	b := MustParse("0110")
	if !a.IsPrefixOf(b) {
		t.Error("01 should be prefix of 0110")
	}
	if b.IsPrefixOf(a) {
		t.Error("0110 should not be prefix of 01")
	}
	if !b.IsPrefixOf(b) {
		t.Error("prefix must be non-strict")
	}
	if MustParse("00").IsPrefixOf(b) {
		t.Error("00 is not prefix of 0110")
	}
}

func TestCommonPrefixLen(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"0110", "0111", 3},
		{"0110", "0110", 4},
		{"0110", "1110", 0},
		{"01", "0110", 2},
		{"", "0110", 0},
	}
	for _, c := range cases {
		a, b := MustParse(c.a), MustParse(c.b)
		if got := a.CommonPrefixLen(b); got != c.want {
			t.Errorf("CommonPrefixLen(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := b.CommonPrefixLen(a); got != c.want {
			t.Errorf("CommonPrefixLen(%q,%q) = %d, want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestOrdering(t *testing.T) {
	ss := []string{"1", "0110", "0", "01", "1000", "0111", "011"}
	codes := make([]Code, len(ss))
	for i, s := range ss {
		codes[i] = MustParse(s)
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i].Less(codes[j]) })
	want := []string{"0", "01", "011", "0110", "0111", "1", "1000"}
	for i, w := range want {
		if codes[i].String() != w {
			t.Fatalf("sorted[%d] = %s, want %s", i, codes[i], w)
		}
	}
}

func TestCompare(t *testing.T) {
	a, b := MustParse("01"), MustParse("0110")
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Error("Compare inconsistent")
	}
}

func TestPackUnpack(t *testing.T) {
	for _, s := range []string{"", "0", "1", "0110", "1111000011110000"} {
		c := MustParse(s)
		b, n := c.Pack()
		if got := Unpack(b, n); !got.Equal(c) {
			t.Errorf("Unpack(Pack(%q)) = %s", s, got)
		}
	}
	// Unpack must sanitize stray bits past the declared length.
	dirty := Unpack(^uint64(0), 3)
	if dirty.String() != "111" {
		t.Fatalf("Unpack dirty = %s", dirty)
	}
	if !dirty.Equal(MustParse("111")) {
		t.Fatal("sanitized code must equal clean code")
	}
	if Unpack(0, MaxLen+10).Len() != MaxLen {
		t.Fatal("Unpack must clamp overlong length")
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Bit out of range", func() { MustParse("01").Bit(2) })
	mustPanic("Parent of empty", func() { Empty.Parent() })
	mustPanic("Sibling of empty", func() { Empty.Sibling() })
	mustPanic("Prefix too long", func() { MustParse("01").Prefix(3) })
	mustPanic("New bad length", func() { New(0, MaxLen+1) })
	mustPanic("Append to full", func() {
		c := Empty
		for i := 0; i <= MaxLen; i++ {
			c = c.Append(1)
		}
	})
	mustPanic("FlipBit out of range", func() { MustParse("01").FlipBit(5) })
}

// randomCode draws a random code of length 0..MaxLen.
func randomCode(r *rand.Rand) Code {
	n := r.Intn(MaxLen + 1)
	c := Empty
	for i := 0; i < n; i++ {
		c = c.Append(r.Intn(2))
	}
	return c
}

func TestQuickPrefixRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		c := randomCode(r)
		if c.IsEmpty() {
			return true
		}
		k := r.Intn(c.Len())
		p := c.Prefix(k)
		return p.IsPrefixOf(c) && p.CommonPrefixLen(c) == k || p.Len() == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickStringParseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func() bool {
		c := randomCode(r)
		if c.IsEmpty() {
			return true
		}
		got, err := Parse(c.String())
		return err == nil && got.Equal(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickSiblingInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		c := randomCode(r)
		if c.IsEmpty() {
			return true
		}
		s := c.Sibling()
		return s.Len() == c.Len() &&
			s.Sibling().Equal(c) &&
			s.CommonPrefixLen(c) == c.Len()-1 &&
			s.Parent().Equal(c.Parent())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickOrderingTotal(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	f := func() bool {
		a, b := randomCode(r), randomCode(r)
		// Exactly one of <, ==, > holds.
		n := 0
		if a.Less(b) {
			n++
		}
		if b.Less(a) {
			n++
		}
		if a.Equal(b) {
			n++
		}
		return n == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickPackUnpack(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	f := func() bool {
		c := randomCode(r)
		b, n := c.Pack()
		return Unpack(b, n).Equal(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAppend(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := Empty
		for j := 0; j < 32; j++ {
			c = c.Append(j & 1)
		}
		_ = c
	}
}

func BenchmarkCommonPrefixLen(b *testing.B) {
	x := MustParse("011010110101101011010110")
	y := MustParse("011010110101101011010111")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.CommonPrefixLen(y)
	}
}
