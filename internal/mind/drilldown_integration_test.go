package mind_test

import (
	"testing"
	"time"

	"mind/internal/cluster"
	"mind/internal/drilldown"
	"mind/internal/mind"
	"mind/internal/schema"
)

// TestDrilldownOverCluster runs the §7 automated drill-down against a
// live MIND deployment: a coarse anomalous region is refined by
// re-querying progressively smaller rectangles until the two injected
// anomaly clusters are isolated.
func TestDrilldownOverCluster(t *testing.T) {
	c := mkCluster(t, 8, 51, nil)
	sch := testSchema()
	if err := c.CreateIndex(sch); err != nil {
		t.Fatal(err)
	}
	c.Settle(2 * time.Second)

	// Background: scattered small-x records. Anomalies: two tight
	// clusters at high x.
	for i := 0; i < 60; i++ {
		res, _, _ := c.InsertWait(i%8, "test-index", schema.Record{uint64(i * 37 % 3000), uint64(i * 97), uint64(i * 53 % 9000), uint64(i)})
		if !res.OK {
			t.Fatal("insert failed")
		}
	}
	anomalies := []schema.Record{
		{9100, 100, 500, 1001},
		{9105, 150, 510, 1002},
		{9700, 200, 8000, 1003},
		{9705, 210, 8010, 1004},
	}
	for i, rec := range anomalies {
		res, _, _ := c.InsertWait(i%8, "test-index", rec)
		if !res.OK {
			t.Fatal("insert failed")
		}
	}

	queries := 0
	qf := func(rect schema.Rect) ([]schema.Record, bool, error) {
		queries++
		res, _, err := c.QueryWait(3, "test-index", rect)
		return res.Records, res.Complete, err
	}
	// Coarse suspicion: anything with x >= 9000 (the anomalous volume).
	start := schema.Rect{Lo: []uint64{9000, 0, 0}, Hi: []uint64{9999, 86400, 9999}}
	res, err := drilldown.Hunt(qf, start, drilldown.Config{SmallEnough: 2, MaxQueries: 80, FrozenDims: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) < 2 {
		t.Fatalf("findings = %d, want the two clusters isolated", len(res.Findings))
	}
	got := 0
	for _, f := range res.Findings {
		got += len(f.Records)
	}
	if got != len(anomalies) {
		t.Fatalf("drill-down found %d anomalous records, want %d", got, len(anomalies))
	}
	if queries == 0 || res.Queries != queries {
		t.Fatalf("query accounting: %d vs %d", res.Queries, queries)
	}
	// The payload attribute (index 3) identifies the anomalies.
	set := drilldown.MonitorSet(res.Findings, 3)
	if len(set) != 4 || set[0] != 1001 {
		t.Fatalf("finding payloads = %v", set)
	}
}

// TestQueryUncoveredDiagnostics checks the incomplete-query diagnostics
// surface the unreachable region.
func TestQueryUncoveredDiagnostics(t *testing.T) {
	c := mkCluster(t, 8, 53, func(o *cluster.Options) {
		o.Node.Replication = 0
		o.Node.QueryTimeout = 5 * time.Second
		// Slow detection so the dead region stays uncovered during the
		// query instead of being taken over.
		o.Node.Overlay.FailAfter = 10 * time.Minute
	})
	sch := testSchema()
	if err := c.CreateIndex(sch); err != nil {
		t.Fatal(err)
	}
	c.Settle(2 * time.Second)
	victim := 4
	victimCode := c.Nodes[victim].Code()
	c.Kill(victim)

	var got *mind.QueryResult
	if err := c.Nodes[0].Query("test-index", fullRect(), func(r mind.QueryResult) { got = &r }); err != nil {
		t.Fatal(err)
	}
	c.Net.RunUntil(func() bool { return got != nil }, 50_000_000)
	if got == nil {
		t.Fatal("query never returned")
	}
	if got.Complete {
		t.Skip("query completed despite dead node (takeover won the race)")
	}
	if len(got.Uncovered) == 0 {
		t.Fatal("incomplete result carries no uncovered diagnostics")
	}
	found := false
	for _, u := range got.Uncovered {
		if len(u) > 3 && victimCode.String() != "" && containsCode(u, victimCode.String()) {
			found = true
		}
	}
	if !found {
		t.Logf("uncovered=%v victim=%s (prefix relation acceptable)", got.Uncovered, victimCode)
	}
}

func containsCode(u, code string) bool {
	// u is "vN:CODE"; match prefix relation either way.
	i := 0
	for i < len(u) && u[i] != ':' {
		i++
	}
	if i == len(u) {
		return false
	}
	r := u[i+1:]
	if len(r) <= len(code) {
		return r == code[:len(r)]
	}
	return r[:len(code)] == code
}
