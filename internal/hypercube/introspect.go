package hypercube

import (
	"sort"
	"time"

	"mind/internal/bitstr"
)

// ContactState is the externally visible state of one contact-table
// entry: identity plus the failure-machinery flags a checker needs to
// distinguish "routable neighbor" from "suspect under probe".
type ContactState struct {
	Addr     string
	Code     bitstr.Code
	LastSeen time.Time
	// Probing marks a contact whose liveness is being verified via an
	// overlay-routed probe.
	Probing bool
	// Unreachable marks a contact suspended from routing (no direct ack
	// past FailAfter) that has not yet been declared dead.
	Unreachable bool
	// AttestedAt is when a probe last vouched for the contact
	// second-hand; zero if never.
	AttestedAt time.Time
}

// Snapshot is a read-only view of one overlay's state at an instant,
// taken atomically under the overlay lock. The chaos harness's global
// invariant checker consumes these; nothing in the overlay reads them
// back.
type Snapshot struct {
	Addr   string
	Joined bool
	Code   bitstr.Code
	// Epoch is the membership-fencing epoch (see Overlay.Epoch).
	Epoch    uint64
	Contacts []ContactState // ascending by Addr
	// Estranged lists addresses this node declared dead and still probes
	// for a post-heal reconnection, ascending.
	Estranged []string
	Recon     ReconStats
}

// Snapshot captures the overlay's current membership view. Contacts are
// sorted by address so downstream iteration (and anything logged from
// it) is deterministic.
func (o *Overlay) Snapshot() Snapshot {
	o.mu.Lock()
	defer o.mu.Unlock()
	s := Snapshot{
		Addr:     o.ep.Addr(),
		Joined:   o.joined,
		Code:     o.code,
		Epoch:    o.epoch,
		Contacts: make([]ContactState, 0, len(o.contacts)),
		Recon:    o.recon,
	}
	for addr := range o.estranged {
		s.Estranged = append(s.Estranged, addr)
	}
	sort.Strings(s.Estranged)
	for _, c := range o.contacts {
		s.Contacts = append(s.Contacts, ContactState{
			Addr:        c.info.Addr,
			Code:        c.info.Code,
			LastSeen:    c.lastSeen,
			Probing:     c.probing,
			Unreachable: c.unreachable,
			AttestedAt:  c.attestedAt,
		})
	}
	sort.Slice(s.Contacts, func(i, j int) bool { return s.Contacts[i].Addr < s.Contacts[j].Addr })
	return s
}
