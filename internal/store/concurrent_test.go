package store

import (
	"math/rand"
	"sync"
	"testing"

	"mind/internal/schema"
)

// TestKDConcurrentInsertQuery exercises the single-writer/multi-reader
// contract under -race: writers insert while readers query, count and
// stream concurrently, then a final differential check against the
// oracle proves no record was lost or duplicated.
func TestKDConcurrentInsertQuery(t *testing.T) {
	const (
		writers       = 4
		readers       = 4
		recsPerWriter = 2000
	)
	kd := NewKD(sch3())
	recs := make([][]schema.Record, writers)
	for w := range recs {
		r := rand.New(rand.NewSource(int64(100 + w)))
		for i := 0; i < recsPerWriter; i++ {
			recs[w] = append(recs[w], randRec(r))
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := randRect(r)
				got := kd.Query(q)
				if n := kd.Count(q); n < 0 {
					t.Errorf("negative count %d", n)
				}
				for _, rec := range got {
					if !q.ContainsRecord(sch3(), rec) {
						t.Errorf("query returned record outside rect")
					}
				}
				kd.All(func(schema.Record) bool { return true })
			}
		}(int64(200 + g))
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for _, rec := range recs[w] {
				kd.Insert(rec)
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()

	if kd.Len() != writers*recsPerWriter {
		t.Fatalf("Len = %d, want %d", kd.Len(), writers*recsPerWriter)
	}
	sc := NewScan(sch3())
	for _, batch := range recs {
		for _, rec := range batch {
			sc.Insert(rec)
		}
	}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		q := randRect(r)
		a, b := kd.Query(q), sc.Query(q)
		if !sameRecs(a, b) {
			t.Fatalf("post-concurrency mismatch: kd %d recs, scan %d", len(a), len(b))
		}
	}
}

// BenchmarkStoreConcurrentQuery compares parallel read throughput of
// three read disciplines over the same 100k records: the sharded
// static+delta engine (compacted: all records in cache-oblivious flat
// arrays), the snapshot-reading pointer KD, and the old single-big-lock
// discipline (every query serialized behind one mutex, as Node.mu used
// to impose). Run with -cpu 1,4,16: the lock-free paths must scale with
// readers while the single-lock path stays flat, and sharded must beat
// snapshot per-op from its vEB layout.
func BenchmarkStoreConcurrentQuery(b *testing.B) {
	r := rand.New(rand.NewSource(37))
	kd := NewKD(sch3())
	sharded := NewSharded(sch3(), Options{})
	for i := 0; i < 100000; i++ {
		rec := randRec(r)
		kd.Insert(rec)
		sharded.Insert(rec)
	}
	sharded.Compact()
	// Selective window rects (≈1% of each dimension), the shape of the
	// §4.1 monitoring queries: per-query cost is tree traversal, not
	// result materialization, so read throughput can actually scale
	// with cores instead of saturating memory bandwidth.
	rects := make([]schema.Rect, 256)
	for i := range rects {
		rc := schema.Rect{Lo: make([]uint64, 3), Hi: make([]uint64, 3)}
		for d := 0; d < 3; d++ {
			lo := r.Uint64() % 9900
			rc.Lo[d], rc.Hi[d] = lo, lo+100
		}
		rects[i] = rc
	}

	// A node serves many in-flight queries per core (every sub-query of
	// every client lands here), so run 8 reader goroutines per proc:
	// with snapshots they proceed independently; behind one mutex they
	// convoy.
	b.Run("sharded", func(b *testing.B) {
		b.ReportAllocs()
		b.SetParallelism(8)
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				_ = sharded.Query(rects[i%len(rects)])
				i++
			}
		})
	})

	b.Run("snapshot", func(b *testing.B) {
		b.ReportAllocs()
		b.SetParallelism(8)
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				_ = kd.Query(rects[i%len(rects)])
				i++
			}
		})
	})

	b.Run("singlelock", func(b *testing.B) {
		var mu sync.Mutex
		b.ReportAllocs()
		b.SetParallelism(8)
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				mu.Lock()
				_ = kd.Query(rects[i%len(rects)])
				mu.Unlock()
				i++
			}
		})
	})
}
