// Package baseline implements the two alternative architectures §2.1
// weighs MIND against, over the same transport and storage substrates:
//
//   - Flooding: every monitor keeps its records locally and each query is
//     flooded to every node; all nodes evaluate every query.
//   - Centralized: every record moves to one central node; queries go
//     there too.
//
// Both share MIND's wire format and local storage engine, so comparative
// benchmarks isolate the architectural difference: per-query work and
// traffic concentration for flooding/centralized versus locality-routed
// sub-queries in MIND.
package baseline

import (
	"fmt"
	"sync"
	"time"

	"mind/internal/schema"
	"mind/internal/store"
	"mind/internal/transport"
	"mind/internal/wire"
)

// QueryResult mirrors mind.QueryResult for the baselines.
type QueryResult struct {
	Records    []schema.Record
	Complete   bool
	Responders int
}

// FloodNode is one node of the query-flooding architecture.
type FloodNode struct {
	mu      sync.Mutex
	ep      transport.Endpoint
	clock   transport.Clock
	sch     *schema.Schema
	local   *store.KD
	peers   []string
	queries map[uint64]*floodQuery
	reqSeq  uint64
}

type floodQuery struct {
	cb        func(QueryResult)
	expected  int
	responses map[string]bool
	records   []schema.Record
	timer     transport.Timer
}

// NewFloodNode creates a flooding node; peers must list every other node
// (flooding assumes full membership knowledge).
func NewFloodNode(ep transport.Endpoint, clock transport.Clock, sch *schema.Schema, peers []string) *FloodNode {
	n := &FloodNode{
		ep:      ep,
		clock:   clock,
		sch:     sch,
		local:   store.NewKD(sch),
		peers:   append([]string(nil), peers...),
		queries: make(map[uint64]*floodQuery),
	}
	ep.SetHandler(n.dispatch)
	return n
}

// Insert stores locally — flooding never moves records at insert time,
// which is its bandwidth advantage (§2.1).
func (n *FloodNode) Insert(rec schema.Record) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.local.Insert(rec)
}

// Len returns the local record count.
func (n *FloodNode) Len() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.local.Len()
}

// Query floods the rect to every peer and waits for all answers (or the
// timeout).
func (n *FloodNode) Query(rect schema.Rect, timeout time.Duration, cb func(QueryResult)) error {
	if !rect.Valid() {
		return fmt.Errorf("baseline: invalid rect")
	}
	n.mu.Lock()
	n.reqSeq++
	reqID := n.reqSeq
	q := &floodQuery{
		cb:        cb,
		expected:  len(n.peers),
		responses: make(map[string]bool),
		records:   n.local.Query(rect),
	}
	n.queries[reqID] = q
	q.timer = n.clock.AfterFunc(timeout, func() { n.finish(reqID, false) })
	peers := n.peers
	n.mu.Unlock()

	if len(peers) == 0 {
		n.finish(reqID, true)
		return nil
	}
	msg := &wire.Query{ReqID: reqID, OriginAddr: n.ep.Addr(), Rect: rect}
	for _, p := range peers {
		_ = n.ep.Send(p, wire.Encode(msg))
	}
	return nil
}

func (n *FloodNode) finish(reqID uint64, complete bool) {
	n.mu.Lock()
	q, ok := n.queries[reqID]
	if !ok {
		n.mu.Unlock()
		return
	}
	delete(n.queries, reqID)
	if q.timer != nil {
		q.timer.Stop()
	}
	res := QueryResult{Records: q.records, Complete: complete, Responders: len(q.responses) + 1}
	n.mu.Unlock()
	if q.cb != nil {
		q.cb(res)
	}
}

func (n *FloodNode) dispatch(from string, data []byte) {
	m, err := wire.Decode(data)
	if err != nil {
		return
	}
	switch msg := m.(type) {
	case *wire.Query:
		// Every node evaluates every query: the flooding cost model.
		n.mu.Lock()
		recs := n.local.Query(msg.Rect)
		n.mu.Unlock()
		resp := &wire.QueryResp{ReqID: msg.ReqID, From: wire.NodeInfo{Addr: n.ep.Addr()}}
		for _, r := range recs {
			resp.Recs = append(resp.Recs, r)
		}
		_ = n.ep.Send(msg.OriginAddr, wire.Encode(resp))
	case *wire.QueryResp:
		n.mu.Lock()
		q, ok := n.queries[msg.ReqID]
		if !ok {
			n.mu.Unlock()
			return
		}
		if !q.responses[msg.From.Addr] {
			q.responses[msg.From.Addr] = true
			for _, r := range msg.Recs {
				q.records = append(q.records, schema.Record(r))
			}
		}
		done := len(q.responses) >= q.expected
		n.mu.Unlock()
		if done {
			n.finish(msg.ReqID, true)
		}
	}
}
