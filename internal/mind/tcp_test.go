package mind_test

import (
	"sync"
	"testing"
	"time"

	"mind/internal/mind"
	"mind/internal/schema"
	"mind/internal/transport"
	"mind/internal/transport/tcpnet"
	"mind/internal/wire"
)

// TestTCPIntegration runs a 4-node MIND deployment over real TCP
// sockets: join, index flood, routed inserts, decomposed queries, and
// the client RPC surface (§3.2's remote invocation).
func TestTCPIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets and timers")
	}
	clock := transport.RealClock{}
	var nodes []*mind.Node
	var eps []*tcpnet.Endpoint
	for i := 0; i < 4; i++ {
		ep, err := tcpnet.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		cfg := mind.DefaultConfig(int64(100 + i))
		cfg.Overlay.HeartbeatInterval = 300 * time.Millisecond
		cfg.Overlay.FailAfter = 1500 * time.Millisecond
		cfg.Overlay.JoinTimeout = 2 * time.Second
		cfg.InsertTimeout = 10 * time.Second
		cfg.QueryTimeout = 10 * time.Second
		nodes = append(nodes, mind.NewNode(ep, clock, cfg))
		eps = append(eps, ep)
	}
	defer func() {
		for i := range nodes {
			nodes[i].Close()
			eps[i].Close()
		}
	}()

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s", what)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	nodes[0].Bootstrap()
	for i := 1; i < 4; i++ {
		nodes[i].Join(eps[0].Addr())
		i := i
		waitFor("join", nodes[i].Joined)
	}

	sch := testSchema()
	if err := nodes[1].CreateIndex(sch, nil); err != nil {
		t.Fatal(err)
	}
	waitFor("index flood", func() bool {
		for _, nd := range nodes {
			if !nd.HasIndex(sch.Tag) {
				return false
			}
		}
		return true
	})

	// Inserts from every node.
	var wg sync.WaitGroup
	var mu sync.Mutex
	okCount := 0
	for i := 0; i < 40; i++ {
		rec := schema.Record{uint64(i * 250), uint64(i * 2000), uint64(i * 249), uint64(i)}
		wg.Add(1)
		err := nodes[i%4].Insert(sch.Tag, rec, func(res mind.InsertResult) {
			mu.Lock()
			if res.OK {
				okCount++
			}
			mu.Unlock()
			wg.Done()
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("insert acks stalled")
	}
	if okCount != 40 {
		t.Fatalf("acked %d/40 inserts", okCount)
	}

	// Full-range query.
	qdone := make(chan mind.QueryResult, 1)
	if err := nodes[3].Query(sch.Tag, fullRect(), func(r mind.QueryResult) { qdone <- r }); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-qdone:
		if !r.Complete || len(r.Records) != 40 {
			t.Fatalf("query: complete=%v records=%d", r.Complete, len(r.Records))
		}
	case <-time.After(20 * time.Second):
		t.Fatal("query stalled")
	}

	// Client RPC from an endpoint outside the overlay.
	client, err := tcpnet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	resp := make(chan wire.Message, 4)
	client.SetHandler(func(from string, data []byte) {
		if m, err := wire.Decode(data); err == nil {
			resp <- m
		}
	})
	// Insert via RPC.
	ins := &wire.ClientInsert{ReqID: 7, Index: sch.Tag, Rec: []uint64{123, 456, 789, 999}}
	if err := client.Send(eps[2].Addr(), wire.Encode(ins)); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-resp:
		ack, ok := m.(*wire.ClientAck)
		if !ok || !ack.OK || ack.ReqID != 7 {
			t.Fatalf("client insert ack: %#v", m)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("client insert stalled")
	}
	// Query via RPC.
	cq := &wire.ClientQuery{ReqID: 8, Index: sch.Tag, Rect: schema.Rect{
		Lo: []uint64{123, 0, 0}, Hi: []uint64{123, 86400, 9999},
	}}
	if err := client.Send(eps[0].Addr(), wire.Encode(cq)); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-resp:
		qr, ok := m.(*wire.ClientQueryResp)
		if !ok || !qr.Complete || len(qr.Recs) != 1 || qr.Recs[0][3] != 999 {
			t.Fatalf("client query resp: %#v", m)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("client query stalled")
	}
	// Unknown-index RPC errors cleanly.
	bad := &wire.ClientQuery{ReqID: 9, Index: "ghost", Rect: fullRect()}
	if err := client.Send(eps[0].Addr(), wire.Encode(bad)); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-resp:
		qr, ok := m.(*wire.ClientQueryResp)
		if !ok || qr.Complete {
			t.Fatalf("ghost query resp: %#v", m)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("ghost query stalled")
	}
}
