// Package embed implements MIND's locality-preserving data-space
// embedding (§3.4–3.7): the mapping between a k-dimensional attribute
// space and the bit-string code space shared with the hypercube overlay.
//
// The data space is recursively cut by axis-aligned hyper-planes, one
// dimension per level in round-robin order. Each cut appends one bit to
// the code of a region: values at or below the cut get bit 0, values
// above it get bit 1. A data point therefore maps to a code of any
// desired depth, and an axis-aligned query rectangle maps to the code
// prefix of the smallest region that contains it, plus a decomposition
// into deeper regions it straddles.
//
// A Tree carries an explicit, histogram-balanced cut array down to a
// configurable depth (the §3.7 balanced cuts computed from the previous
// day's distribution); below the explicit depth, cuts fall back to
// midpoints of the enclosing region. A Tree with explicit depth zero is
// the uniform (unbalanced) embedding of Fig 5 top-left.
package embed

import (
	"fmt"

	"mind/internal/bitstr"
	"mind/internal/histogram"
	"mind/internal/schema"
)

// MaxDepth bounds code depth; it matches bitstr.MaxLen.
const MaxDepth = bitstr.MaxLen

// Tree is an immutable cut tree over a bounded data space. The explicit
// levels form a complete binary tree stored in breadth-first order:
// level d occupies cuts[2^d-1 : 2^(d+1)-1], and the cut dimension at
// level d is d mod dims for every node of that level.
type Tree struct {
	bounds   []uint64
	expDepth int
	cuts     []uint64 // len == 1<<expDepth - 1
}

// Uniform builds the embedding with midpoint cuts everywhere.
func Uniform(bounds []uint64) *Tree {
	return &Tree{bounds: append([]uint64(nil), bounds...)}
}

// Balanced builds an embedding whose first depth levels are median cuts
// derived from the histogram (each cut divides the region's estimated
// weight in half); deeper levels use midpoint cuts. Empty or degenerate
// regions fall back to midpoint cuts, so the tree is total.
func Balanced(h *histogram.Hist, depth int) (*Tree, error) {
	if depth < 0 || depth > MaxDepth {
		return nil, fmt.Errorf("embed: balanced depth %d out of range [0,%d]", depth, MaxDepth)
	}
	if depth > 24 {
		return nil, fmt.Errorf("embed: balanced depth %d too deep for explicit storage", depth)
	}
	bounds := h.Bounds()
	t := &Tree{
		bounds:   bounds,
		expDepth: depth,
		cuts:     make([]uint64, (1<<uint(depth))-1),
	}
	if depth == 0 {
		return t, nil
	}
	dims := len(bounds)
	lo := make([]uint64, dims)
	hi := append([]uint64(nil), bounds...)
	t.build(h, 0, 0, lo, hi, dims)
	return t, nil
}

// build fills cuts[] for the subtree rooted at BFS index idx, level d,
// owning the region [lo, hi].
func (t *Tree) build(h *histogram.Hist, idx, d int, lo, hi []uint64, dims int) {
	if d >= t.expDepth {
		return
	}
	dim := d % dims
	cut, ok := h.SplitValue(lo, hi, dim)
	if !ok {
		cut = midpoint(lo[dim], hi[dim])
	}
	t.cuts[idx] = cut
	// Left child: region with x_dim <= cut.
	oldLo, oldHi := lo[dim], hi[dim]
	hi[dim] = cut
	t.build(h, 2*idx+1, d+1, lo, hi, dims)
	hi[dim] = oldHi
	// Right child: region with x_dim > cut. It can be empty when the cut
	// pinned to the top of a degenerate interval; keep the midpoint
	// convention (cut < hi guaranteed unless lo == hi).
	if cut < oldHi {
		lo[dim] = cut + 1
		t.build(h, 2*idx+2, d+1, lo, hi, dims)
		lo[dim] = oldLo
	} else {
		// Degenerate: fill the right subtree with the same degenerate
		// region's midpoints so lookups stay total.
		lo[dim] = oldHi
		t.build(h, 2*idx+2, d+1, lo, hi, dims)
		lo[dim] = oldLo
	}
}

func midpoint(lo, hi uint64) uint64 { return lo + (hi-lo)/2 }

// Dims returns the data-space dimensionality.
func (t *Tree) Dims() int { return len(t.bounds) }

// Bounds returns the per-dimension inclusive upper bounds.
func (t *Tree) Bounds() []uint64 { return append([]uint64(nil), t.bounds...) }

// ExplicitDepth returns the number of histogram-balanced levels.
func (t *Tree) ExplicitDepth() int { return t.expDepth }

// cutValue returns the cut coordinate for the region at level d reached
// by the code prefix path (the first d bits of the path), given the
// region's current interval [lo, hi] along the cut dimension.
func (t *Tree) cutValue(path bitstr.Code, d int, lo, hi uint64) uint64 {
	if d < t.expDepth {
		idx := (1 << uint(d)) - 1 + int(path.Prefix(d).Uint64())
		c := t.cuts[idx]
		// Clamp a stale/degenerate explicit cut into the interval so both
		// halves stay well-formed.
		if c < lo {
			c = lo
		}
		if c > hi {
			c = hi
		}
		return c
	}
	return midpoint(lo, hi)
}

// PointCode maps point p to its depth-bit code. Out-of-bound coordinates
// are clamped to the dimension bound (§4.1: such tuples are assigned the
// largest range). It panics on arity mismatch or excessive depth.
func (t *Tree) PointCode(p []uint64, depth int) bitstr.Code {
	if len(p) != len(t.bounds) {
		panic(fmt.Sprintf("embed: point dims %d != %d", len(p), len(t.bounds)))
	}
	if depth < 0 || depth > MaxDepth {
		panic(fmt.Sprintf("embed: depth %d out of range", depth))
	}
	dims := len(t.bounds)
	lo := make([]uint64, dims)
	hi := append([]uint64(nil), t.bounds...)
	code := bitstr.Empty
	for d := 0; d < depth; d++ {
		dim := d % dims
		v := p[dim]
		if v > t.bounds[dim] {
			v = t.bounds[dim]
		}
		cut := t.cutValue(code, d, lo[dim], hi[dim])
		if v <= cut || cut == hi[dim] {
			// cut == hi means the right half is empty; everything left.
			code = code.Append(0)
			hi[dim] = cut
		} else {
			code = code.Append(1)
			lo[dim] = cut + 1
		}
	}
	return code
}

// CodeRect returns the region of the data space owned by code c.
func (t *Tree) CodeRect(c bitstr.Code) schema.Rect {
	dims := len(t.bounds)
	lo := make([]uint64, dims)
	hi := append([]uint64(nil), t.bounds...)
	for d := 0; d < c.Len(); d++ {
		dim := d % dims
		cut := t.cutValue(c.Prefix(d), d, lo[dim], hi[dim])
		if c.Bit(d) == 0 {
			hi[dim] = cut
		} else {
			if cut >= hi[dim] {
				// Degenerate right branch of a pinned cut: empty region,
				// represented as the top coordinate alone.
				lo[dim] = hi[dim]
			} else {
				lo[dim] = cut + 1
			}
		}
	}
	return schema.Rect{Lo: lo, Hi: hi}
}

// QueryCode maps query rectangle q to the code of the smallest region
// that wholly contains it, descending at most maxDepth levels. This is
// the code a query is greedy-routed towards (§3.6).
func (t *Tree) QueryCode(q schema.Rect, maxDepth int) bitstr.Code {
	if len(q.Lo) != len(t.bounds) {
		panic("embed: query dims mismatch")
	}
	if maxDepth > MaxDepth {
		maxDepth = MaxDepth
	}
	dims := len(t.bounds)
	lo := make([]uint64, dims)
	hi := append([]uint64(nil), t.bounds...)
	code := bitstr.Empty
	for d := 0; d < maxDepth; d++ {
		dim := d % dims
		qLo, qHi := q.Lo[dim], q.Hi[dim]
		if qHi > t.bounds[dim] {
			qHi = t.bounds[dim]
		}
		if qLo > t.bounds[dim] {
			qLo = t.bounds[dim]
		}
		cut := t.cutValue(code, d, lo[dim], hi[dim])
		switch {
		case qHi <= cut || cut == hi[dim]:
			code = code.Append(0)
			hi[dim] = cut
		case qLo > cut:
			code = code.Append(1)
			lo[dim] = cut + 1
		default:
			return code // query straddles the cut
		}
	}
	return code
}

// SubQuery is one piece of a decomposed query: the region code to route
// to and the query rectangle clipped to that region.
type SubQuery struct {
	Code bitstr.Code
	Rect schema.Rect
}

// Children returns the non-empty child regions of a region code with
// their rects, mirroring the rule Decompose applies: the right branch of
// a cut pinned to the region's top coordinate is empty and omitted.
func (t *Tree) Children(region bitstr.Code) []SubQuery {
	if region.Len() >= MaxDepth {
		return nil
	}
	dims := len(t.bounds)
	lo := make([]uint64, dims)
	hi := append([]uint64(nil), t.bounds...)
	for d := 0; d < region.Len(); d++ {
		dim := d % dims
		cut := t.cutValue(region.Prefix(d), d, lo[dim], hi[dim])
		if region.Bit(d) == 0 {
			hi[dim] = cut
		} else {
			if cut >= hi[dim] {
				lo[dim] = hi[dim]
			} else {
				lo[dim] = cut + 1
			}
		}
	}
	d := region.Len()
	dim := d % dims
	cut := t.cutValue(region, d, lo[dim], hi[dim])
	var out []SubQuery
	leftLo := append([]uint64(nil), lo...)
	leftHi := append([]uint64(nil), hi...)
	leftHi[dim] = cut
	out = append(out, SubQuery{Code: region.Append(0), Rect: schema.Rect{Lo: leftLo, Hi: leftHi}})
	if cut < hi[dim] {
		rightLo := append([]uint64(nil), lo...)
		rightHi := append([]uint64(nil), hi...)
		rightLo[dim] = cut + 1
		out = append(out, SubQuery{Code: region.Append(1), Rect: schema.Rect{Lo: rightLo, Hi: rightHi}})
	}
	return out
}

// Decompose splits query rectangle q into sub-queries at code depth
// depth: every depth-bit region the query intersects yields one SubQuery
// with the clipped rectangle. The first node whose region abuts the query
// performs this split before fanning sub-queries out on the overlay
// (§3.6). The number of sub-queries is bounded by 2^depth.
func (t *Tree) Decompose(q schema.Rect, depth int) []SubQuery {
	if len(q.Lo) != len(t.bounds) {
		panic("embed: query dims mismatch")
	}
	if depth < 0 || depth > MaxDepth {
		panic(fmt.Sprintf("embed: depth %d out of range", depth))
	}
	// Clamp the query into bounds once.
	qc := q.Clone()
	for i := range qc.Lo {
		if qc.Lo[i] > t.bounds[i] {
			qc.Lo[i] = t.bounds[i]
		}
		if qc.Hi[i] > t.bounds[i] {
			qc.Hi[i] = t.bounds[i]
		}
	}
	dims := len(t.bounds)
	lo := make([]uint64, dims)
	hi := append([]uint64(nil), t.bounds...)
	var out []SubQuery
	t.decompose(qc, bitstr.Empty, 0, depth, lo, hi, dims, &out)
	return out
}

func (t *Tree) decompose(q schema.Rect, code bitstr.Code, d, depth int, lo, hi []uint64, dims int, out *[]SubQuery) {
	if d == depth {
		// Clip q to the region [lo, hi].
		sub := q.Clone()
		for i := 0; i < dims; i++ {
			if sub.Lo[i] < lo[i] {
				sub.Lo[i] = lo[i]
			}
			if sub.Hi[i] > hi[i] {
				sub.Hi[i] = hi[i]
			}
		}
		*out = append(*out, SubQuery{Code: code, Rect: sub})
		return
	}
	dim := d % dims
	cut := t.cutValue(code, d, lo[dim], hi[dim])
	oldLo, oldHi := lo[dim], hi[dim]
	// Left side: region x_dim in [lo, cut].
	if q.Lo[dim] <= cut {
		hi[dim] = cut
		t.decompose(q, code.Append(0), d+1, depth, lo, hi, dims, out)
		hi[dim] = oldHi
	}
	// Right side: region x_dim in [cut+1, hi]; empty when cut == hi.
	if cut < oldHi && q.Hi[dim] > cut {
		lo[dim] = cut + 1
		t.decompose(q, code.Append(1), d+1, depth, lo, hi, dims, out)
		lo[dim] = oldLo
	}
}
