// Package metrics collects and summarizes the measurements the
// experiments report: latency distributions (median / mean / 90th / 99th
// percentile, Figs 7, 10, 14), hop-count and query-cost CDFs (Figs 9,
// 15), per-link and per-node load distributions (Figs 12, 13), and time
// series of per-message delays (Figs 8, 11).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Dist accumulates a sample distribution.
type Dist struct {
	vals   []float64
	sorted bool
}

// NewDist returns an empty distribution.
func NewDist() *Dist { return &Dist{} }

// Add appends one sample.
func (d *Dist) Add(v float64) {
	d.vals = append(d.vals, v)
	d.sorted = false
}

// AddDuration appends a duration sample in seconds.
func (d *Dist) AddDuration(v time.Duration) { d.Add(v.Seconds()) }

// N returns the sample count.
func (d *Dist) N() int { return len(d.vals) }

func (d *Dist) sortOnce() {
	if !d.sorted {
		sort.Float64s(d.vals)
		d.sorted = true
	}
}

// Percentile returns the p-th percentile (0 <= p <= 100) with linear
// interpolation; NaN for an empty distribution.
func (d *Dist) Percentile(p float64) float64 {
	if len(d.vals) == 0 {
		return math.NaN()
	}
	d.sortOnce()
	if p <= 0 {
		return d.vals[0]
	}
	if p >= 100 {
		return d.vals[len(d.vals)-1]
	}
	rank := p / 100 * float64(len(d.vals)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(d.vals) {
		return d.vals[lo]
	}
	return d.vals[lo]*(1-frac) + d.vals[lo+1]*frac
}

// Median returns the 50th percentile.
func (d *Dist) Median() float64 { return d.Percentile(50) }

// Mean returns the arithmetic mean; NaN when empty.
func (d *Dist) Mean() float64 {
	if len(d.vals) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range d.vals {
		s += v
	}
	return s / float64(len(d.vals))
}

// Min returns the smallest sample; NaN when empty.
func (d *Dist) Min() float64 {
	if len(d.vals) == 0 {
		return math.NaN()
	}
	d.sortOnce()
	return d.vals[0]
}

// Max returns the largest sample; NaN when empty.
func (d *Dist) Max() float64 {
	if len(d.vals) == 0 {
		return math.NaN()
	}
	d.sortOnce()
	return d.vals[len(d.vals)-1]
}

// Stddev returns the population standard deviation; NaN when empty.
func (d *Dist) Stddev() float64 {
	if len(d.vals) == 0 {
		return math.NaN()
	}
	m := d.Mean()
	s := 0.0
	for _, v := range d.vals {
		s += (v - m) * (v - m)
	}
	return math.Sqrt(s / float64(len(d.vals)))
}

// CDF returns (value, cumulative fraction) pairs at each distinct sample
// value, suitable for printing a figure's CDF series.
func (d *Dist) CDF() []CDFPoint {
	if len(d.vals) == 0 {
		return nil
	}
	d.sortOnce()
	var out []CDFPoint
	n := float64(len(d.vals))
	for i, v := range d.vals {
		if i+1 < len(d.vals) && d.vals[i+1] == v {
			continue
		}
		out = append(out, CDFPoint{Value: v, Frac: float64(i+1) / n})
	}
	return out
}

// CDFPoint is one point of a cumulative distribution.
type CDFPoint struct {
	Value float64
	Frac  float64
}

// FracAtMost returns the fraction of samples <= x.
func (d *Dist) FracAtMost(x float64) float64 {
	if len(d.vals) == 0 {
		return math.NaN()
	}
	d.sortOnce()
	return float64(sort.SearchFloat64s(d.vals, math.Nextafter(x, math.Inf(1)))) / float64(len(d.vals))
}

// Summary is the five-number summary the paper's latency figures print.
type Summary struct {
	N      int
	Median float64
	Mean   float64
	P90    float64
	P99    float64
	Max    float64
}

// Summarize computes the summary.
func (d *Dist) Summarize() Summary {
	return Summary{
		N:      d.N(),
		Median: d.Median(),
		Mean:   d.Mean(),
		P90:    d.Percentile(90),
		P99:    d.Percentile(99),
		Max:    d.Max(),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d median=%.3f mean=%.3f p90=%.3f p99=%.3f max=%.3f",
		s.N, s.Median, s.Mean, s.P90, s.P99, s.Max)
}

// Series is a time-ordered sequence of (t, value) samples (Figs 8, 11).
type Series struct {
	T []time.Time
	V []float64
}

// Add appends one sample.
func (s *Series) Add(t time.Time, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.V) }

// MaxValue returns the largest value and its time.
func (s *Series) MaxValue() (time.Time, float64) {
	if len(s.V) == 0 {
		return time.Time{}, math.NaN()
	}
	bi := 0
	for i, v := range s.V {
		if v > s.V[bi] {
			bi = i
		}
	}
	return s.T[bi], s.V[bi]
}

// Occupancy accumulates how many items rode in how many batches — the
// headline statistic of the insert-coalescing pipeline (batches sent or
// received, and their mean fill).
type Occupancy struct {
	Batches uint64
	Items   uint64
}

// Observe records one batch carrying n items.
func (o *Occupancy) Observe(n int) {
	o.Batches++
	o.Items += uint64(n)
}

// Mean returns items per batch; NaN before the first observation.
func (o *Occupancy) Mean() float64 {
	if o.Batches == 0 {
		return math.NaN()
	}
	return float64(o.Items) / float64(o.Batches)
}

// Reliability accumulates the reliable-request-layer counters: tracked
// requests issued, retransmissions sent, end-to-end acks received over
// the wire, and duplicate requests suppressed or absorbed at idempotent
// receivers.
type Reliability struct {
	Requests    uint64
	Retransmits uint64
	Acks        uint64
	DedupHits   uint64
}

// RetransmitsPerRequest returns the mean retransmission count per
// tracked request; NaN before the first request.
func (r Reliability) RetransmitsPerRequest() float64 {
	if r.Requests == 0 {
		return math.NaN()
	}
	return float64(r.Retransmits) / float64(r.Requests)
}

func (r Reliability) String() string {
	return fmt.Sprintf("requests=%d retransmits=%d acks=%d dedup_hits=%d",
		r.Requests, r.Retransmits, r.Acks, r.DedupHits)
}

// Reversion accumulates the live-reversioning counters: cut-tree
// installs applied and refused by epoch ordering, versions retired,
// tree pulls/pushes and sync exchanges of the skew-repair machinery,
// data messages that exposed an epoch mismatch, records re-placed after
// a mid-flip install, and split-brain reconciliation work (step-downs
// and post-rejoin re-insertions).
type Reversion struct {
	Installs        uint64 `json:"installs"`
	InstallsRefused uint64 `json:"installs_refused"`
	Retired         uint64 `json:"retired"`
	TreePulls       uint64 `json:"tree_pulls"`
	TreePushes      uint64 `json:"tree_pushes"`
	TreeSyncs       uint64 `json:"tree_syncs"`
	SkewInserts     uint64 `json:"skew_inserts"`
	SkewQueries     uint64 `json:"skew_queries"`
	Reshuffled      uint64 `json:"reshuffled"`
	StepDowns       uint64 `json:"step_downs"`
	Reinserted      uint64 `json:"reinserted"`
}

func (r Reversion) String() string {
	return fmt.Sprintf("installs=%d refused=%d retired=%d pulls=%d pushes=%d syncs=%d skew_ins=%d skew_q=%d reshuffled=%d stepdowns=%d reinserted=%d",
		r.Installs, r.InstallsRefused, r.Retired, r.TreePulls, r.TreePushes, r.TreeSyncs,
		r.SkewInserts, r.SkewQueries, r.Reshuffled, r.StepDowns, r.Reinserted)
}

// Transport condenses a managed transport's connection health: dial and
// reconnect churn, frames dropped at the transport (bounded queues,
// write deadlines, open circuits), and the peer-state census. Produced
// by tcpnet.Endpoint.Health and served by the ops endpoint.
type Transport struct {
	Dials         uint64 `json:"dials"`
	Reconnects    uint64 `json:"reconnects"`
	Evictions     uint64 `json:"evictions"`
	FramesSent    uint64 `json:"frames_sent"`
	FramesDropped uint64 `json:"frames_dropped"`
	WriteTimeouts uint64 `json:"write_timeouts"`
	PeersDialing  int    `json:"peers_dialing"`
	PeersHealthy  int    `json:"peers_healthy"`
	PeersDegraded int    `json:"peers_degraded"`
	PeersDead     int    `json:"peers_dead"`
	InboundConns  int    `json:"inbound_conns"`
}

// DropFraction returns frames dropped per frame offered; NaN before the
// first frame.
func (t Transport) DropFraction() float64 {
	total := t.FramesSent + t.FramesDropped
	if total == 0 {
		return math.NaN()
	}
	return float64(t.FramesDropped) / float64(total)
}

func (t Transport) String() string {
	return fmt.Sprintf("dials=%d reconnects=%d evictions=%d sent=%d dropped=%d wtimeouts=%d peers=%d/%d/%d/%d (h/dg/dd/di) in=%d",
		t.Dials, t.Reconnects, t.Evictions, t.FramesSent, t.FramesDropped, t.WriteTimeouts,
		t.PeersHealthy, t.PeersDegraded, t.PeersDead, t.PeersDialing, t.InboundConns)
}

// Admission accumulates the node-level overload-protection counters:
// client RPCs and gossip floods offered versus shed. The vocabulary
// mirrors the ingest engine's drop/block admission control — shedding is
// an explicit drop with a response, never a silent stall.
type Admission struct {
	ShedInserts uint64 `json:"shed_inserts"`
	ShedQueries uint64 `json:"shed_queries"`
	ShedGossip  uint64 `json:"shed_gossip"`
}

// Total returns all shed operations.
func (a Admission) Total() uint64 { return a.ShedInserts + a.ShedQueries + a.ShedGossip }

func (a Admission) String() string {
	return fmt.Sprintf("shed_inserts=%d shed_queries=%d shed_gossip=%d",
		a.ShedInserts, a.ShedQueries, a.ShedGossip)
}

// Counter tracks per-key integer loads (per-link traffic, per-node
// storage).
type Counter struct {
	m map[string]int
}

// NewCounter returns an empty counter.
func NewCounter() *Counter { return &Counter{m: make(map[string]int)} }

// Inc adds n to key.
func (c *Counter) Inc(key string, n int) { c.m[key] += n }

// Get returns key's count.
func (c *Counter) Get(key string) int { return c.m[key] }

// Len returns the number of keys.
func (c *Counter) Len() int { return len(c.m) }

// Entry is one counter key with its count.
type Entry struct {
	Key   string
	Count int
}

// Sorted returns entries by descending count (ties by key).
func (c *Counter) Sorted() []Entry {
	out := make([]Entry, 0, len(c.m))
	for k, v := range c.m {
		out = append(out, Entry{k, v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Values returns the counts as a Dist for skew analysis.
func (c *Counter) Values() *Dist {
	d := NewDist()
	for _, v := range c.m {
		d.Add(float64(v))
	}
	return d
}

// ImbalanceRatio returns max/mean of the counts — the headline number of
// the storage-balance figures (Fig 2, Fig 13). NaN when empty.
func (c *Counter) ImbalanceRatio() float64 {
	d := c.Values()
	if d.N() == 0 {
		return math.NaN()
	}
	return d.Max() / d.Mean()
}

// Table renders aligned experiment output rows.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = v.Round(time.Millisecond).String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}
