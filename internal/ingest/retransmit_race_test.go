package ingest

import (
	"sync"
	"testing"
	"time"

	"mind/internal/mind"
	"mind/internal/schema"
	"mind/internal/transport"
	"mind/internal/transport/tcpnet"
	"mind/internal/wire"
)

// ackDropEndpoint wraps a transport endpoint and swallows the FIRST
// InsertAck sent for every request id — exactly the loss the transport
// contract permits. The originator's batch-group retransmission schedule
// then has to re-send every remote record at least once, while the
// second (dedup-hit) ack settles it concurrently.
type ackDropEndpoint struct {
	transport.Endpoint
	mu      sync.Mutex
	seen    map[uint64]bool
	dropped int
}

func (e *ackDropEndpoint) Send(to string, msg []byte) error {
	if m, err := wire.Decode(msg); err == nil {
		if ack, ok := m.(*wire.InsertAck); ok {
			e.mu.Lock()
			first := !e.seen[ack.ReqID]
			if first {
				e.seen[ack.ReqID] = true
				e.dropped++
			}
			e.mu.Unlock()
			if first {
				return nil
			}
		}
	}
	return e.Endpoint.Send(to, msg)
}

func (e *ackDropEndpoint) droppedAcks() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dropped
}

// TestRetransmitRecycleRace is the regression net for the data race
// between batch-group retransmission and ingest record recycling: an
// insertOp's msg.Rec aliases the engine's pooled record buffer, and a
// member that settles while resendInsertGroup is encoding its
// retransmission used to let a new producer overwrite the buffer
// mid-encode (torn record on the wire). The resend must deep-copy the
// record under the node lock; run under -race this test trips on the
// old shallow copy.
//
// Topology: two nodes over real TCP, the remote owner dropping the
// first ack of every insert so every remote record is retransmitted at
// least once, while concurrent producers keep the engine's record pool
// churning through frame parses.
func TestRetransmitRecycleRace(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets and timers")
	}
	clock := transport.RealClock{}
	mkCfg := func(seed int64) mind.Config {
		cfg := mind.DefaultConfig(seed)
		cfg.Overlay.HeartbeatInterval = 300 * time.Millisecond
		cfg.Overlay.FailAfter = 5 * time.Second
		cfg.Overlay.JoinTimeout = 2 * time.Second
		cfg.InsertTimeout = 10 * time.Second
		cfg.QueryTimeout = 10 * time.Second
		// Aggressive retransmission: the dropped first acks force one
		// resend per remote record almost immediately.
		cfg.RetryBase = 2 * time.Millisecond
		cfg.RetryMax = 8 * time.Millisecond
		cfg.MaxRetries = 6
		return cfg
	}

	ep0, err := tcpnet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ep0.Close()
	ep1raw, err := tcpnet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ep1raw.Close()
	ep1 := &ackDropEndpoint{Endpoint: ep1raw, seen: make(map[uint64]bool)}

	node0 := mind.NewNode(ep0, clock, mkCfg(1))
	defer node0.Close()
	node1 := mind.NewNode(ep1, clock, mkCfg(2))
	defer node1.Close()

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	node0.Bootstrap()
	node1.Join(ep0.Addr())
	waitFor("join", node1.Joined)

	sch := schema.Index2(1 << 20)
	if err := node0.CreateIndex(sch, nil); err != nil {
		t.Fatal(err)
	}
	waitFor("index flood", func() bool { return node1.HasIndex(sch.Tag) })

	// Block mode so overload never sheds: every offered record must
	// settle, keeping the pool churn (putRec on remote settle, getRec on
	// the next frame) running for the whole test.
	eng := New(node0, Config{
		Shards:      2,
		RingSize:    1 << 10,
		MaxBatch:    32,
		Block:       true,
		SelfAddr:    node0.Addr(),
		NodePending: node0.PendingInserts,
	})
	defer eng.Close()

	const producers, frames, perFrame = 4, 25, 64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			buf := []byte(nil)
			recs := make([][]uint64, perFrame)
			for i := range recs {
				recs[i] = make([]uint64, 5)
			}
			rng := uint64(p)*0x9e3779b97f4a7c15 + 1
			next := func() uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng
			}
			for fi := 0; fi < frames; fi++ {
				for i := range recs {
					recs[i][0] = next() & 0xffffffff         // dest_prefix
					recs[i][1] = next() % (1 << 20)          // timestamp
					recs[i][2] = next() % schema.OctetsBound // octets
					recs[i][3] = next() & 0xffffffff         // source_prefix
					recs[i][4] = uint64(p)                   // node
				}
				buf = wire.AppendFlowFrame(buf[:0], uint64(fi+1), sch.Tag, 5, recs)
				f, err := wire.ParseFlowFrame(buf)
				if err != nil {
					t.Error(err)
					return
				}
				eng.IngestFrame(&f)
			}
		}(p)
	}
	wg.Wait()

	waitFor("settle", func() bool {
		st := eng.Stats()
		return st.Pending == 0 && st.Queued == 0
	})

	st := eng.Stats()
	const offered = producers * frames * perFrame
	if st.Received != offered || st.Accepted != offered {
		t.Fatalf("received %d accepted %d, offered %d (blocking mode must not shed)", st.Received, st.Accepted, offered)
	}
	if st.Acked+st.Failed != st.Accepted {
		t.Fatalf("settled %d+%d, accepted %d", st.Acked, st.Failed, st.Accepted)
	}
	if st.Failed != 0 {
		t.Fatalf("failed %d inserts: the second ack must always settle", st.Failed)
	}
	// The scenario only bites when retransmissions actually fired while
	// records settled and recycled; make sure the dropped acks forced
	// them.
	if ep1.droppedAcks() == 0 {
		t.Fatal("no acks dropped: no record routed to the remote node")
	}
	if rt := node0.ReliabilityStats().Retransmits; rt == 0 {
		t.Fatal("no retransmissions fired: the race window was never exercised")
	}
	t.Logf("retransmit/recycle churn: %d records, %d acks dropped, %d retransmits",
		offered, ep1.droppedAcks(), node0.ReliabilityStats().Retransmits)
}
