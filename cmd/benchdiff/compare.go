package main

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Verdict classifies one metric's movement between two reports.
type Verdict int

const (
	// OK: within threshold, or an improvement.
	OK Verdict = iota
	// Info: reported but never gates — direction unknown, real-time
	// (rt_-prefixed) metric, or a metric new in the current run.
	Info
	// Regression: worsened beyond the threshold, or vanished from the
	// current run.
	Regression
)

// Diff is one metric's comparison result.
type Diff struct {
	Experiment string
	Metric     string
	Base, Cur  float64
	Rel        float64 // signed relative change vs baseline; NaN if base is 0
	Verdict    Verdict
	Reason     string
}

func (d Diff) String() string {
	tag := map[Verdict]string{OK: "ok  ", Info: "info", Regression: "FAIL"}[d.Verdict]
	rel := "      n/a"
	if !math.IsNaN(d.Rel) {
		rel = fmt.Sprintf("%+8.1f%%", d.Rel*100)
	}
	return fmt.Sprintf("%s %-18s %-32s %12.3f -> %12.3f  %s  %s",
		tag, d.Experiment, d.Metric, d.Base, d.Cur, rel, d.Reason)
}

// direction returns +1 when higher is better, -1 when lower is better,
// 0 when unknown. Matched against the metric-naming conventions the
// experiments use; an unknown name is deliberately non-gating so a new
// metric cannot fail the gate until someone teaches the comparator
// which way it points.
func direction(metric string) int {
	m := strings.ToLower(metric)
	lowerBetter := []string{
		"latency", "_ms", "drop", "imbalance", "retransmit", "fail",
		"incomplete", "hops", "miss", "lost", "stale", "error",
	}
	higherBetter := []string{
		"per_sec", "rate", "recall", "acked", "inserted", "complete",
		"success", "coverage", "survived", "accounting_ok",
	}
	for _, s := range lowerBetter {
		if strings.Contains(m, s) {
			return -1
		}
	}
	for _, s := range higherBetter {
		if strings.Contains(m, s) {
			return 1
		}
	}
	return 0
}

// Compare evaluates every baseline metric against the current run.
// Real-time (rt_) metrics and unknown-direction metrics are
// informational; a baseline metric missing from the current run is a
// regression (lost coverage must not pass silently).
func Compare(base, cur []report, threshold float64) []Diff {
	curByID := make(map[string]map[string]float64, len(cur))
	for _, r := range cur {
		curByID[r.ID] = r.Values
	}
	var out []Diff
	for _, b := range base {
		ids := make([]string, 0, len(b.Values))
		for k := range b.Values {
			ids = append(ids, k)
		}
		sort.Strings(ids)
		cv, haveExp := curByID[b.ID]
		for _, metric := range ids {
			bv := b.Values[metric]
			d := Diff{Experiment: b.ID, Metric: metric, Base: bv, Rel: math.NaN()}
			if !haveExp {
				d.Verdict = Regression
				d.Reason = "experiment missing from current run"
				out = append(out, d)
				continue
			}
			curV, ok := cv[metric]
			if !ok {
				d.Verdict = Regression
				d.Reason = "metric missing from current run"
				out = append(out, d)
				continue
			}
			d.Cur = curV
			if bv != 0 {
				d.Rel = (curV - bv) / math.Abs(bv)
			}
			out = append(out, classify(d, metric, threshold))
		}
	}
	return out
}

func classify(d Diff, metric string, threshold float64) Diff {
	if strings.HasPrefix(metric, "rt_") {
		d.Verdict = Info
		d.Reason = "real-time metric (host-dependent), not gated"
		return d
	}
	// Wall-clock-derived metrics inside otherwise-deterministic
	// experiments (e.g. ablation-store's kd-vs-scan speedup ratio)
	// move with the host and cannot gate.
	if strings.Contains(strings.ToLower(metric), "speedup") {
		d.Verdict = Info
		d.Reason = "wall-clock measurement, not gated"
		return d
	}
	dir := direction(metric)
	if dir == 0 {
		d.Verdict = Info
		d.Reason = "unknown direction, not gated"
		return d
	}
	// Worsening is movement against the metric's direction. A zero
	// baseline has no relative scale: any movement against the
	// direction fails (deterministic sim metrics are exact, so a
	// failed-count going 0 -> 2 is a real break, not jitter).
	var worse float64
	if math.IsNaN(d.Rel) {
		if d.Cur == d.Base {
			d.Verdict = OK
			d.Reason = "unchanged"
			return d
		}
		if (dir > 0 && d.Cur < d.Base) || (dir < 0 && d.Cur > d.Base) {
			d.Verdict = Regression
			d.Reason = "moved against direction from zero baseline"
			return d
		}
		d.Verdict = OK
		d.Reason = "improved"
		return d
	}
	if dir > 0 {
		worse = -d.Rel
	} else {
		worse = d.Rel
	}
	switch {
	case worse > threshold:
		d.Verdict = Regression
		d.Reason = fmt.Sprintf("worsened %.1f%% > %.0f%%", worse*100, threshold*100)
	case worse > 0:
		d.Verdict = OK
		d.Reason = "within threshold"
	default:
		d.Verdict = OK
		d.Reason = "improved or unchanged"
	}
	return d
}
