package embed

import (
	"encoding/binary"
	"fmt"
)

// Wire format (little-endian):
//
//	u32 dims | dims × u64 bound | u32 expDepth | (2^expDepth - 1) × u64 cut
//
// Cut trees travel to joining nodes together with index definitions, and
// when the daily balanced cuts are installed on every node (§3.7).

// Marshal encodes the tree.
func (t *Tree) Marshal() []byte {
	d := len(t.bounds)
	buf := make([]byte, 0, 4+8*d+4+8*len(t.cuts))
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(d))
	buf = append(buf, tmp[:4]...)
	for _, b := range t.bounds {
		binary.LittleEndian.PutUint64(tmp[:], b)
		buf = append(buf, tmp[:]...)
	}
	binary.LittleEndian.PutUint32(tmp[:4], uint32(t.expDepth))
	buf = append(buf, tmp[:4]...)
	for _, c := range t.cuts {
		binary.LittleEndian.PutUint64(tmp[:], c)
		buf = append(buf, tmp[:]...)
	}
	return buf
}

// Unmarshal decodes a tree produced by Marshal.
func Unmarshal(data []byte) (*Tree, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("embed: short header")
	}
	d := int(binary.LittleEndian.Uint32(data[:4]))
	data = data[4:]
	if d <= 0 || d > 64 {
		return nil, fmt.Errorf("embed: bad dimensionality %d", d)
	}
	if len(data) < 8*d+4 {
		return nil, fmt.Errorf("embed: truncated bounds")
	}
	t := &Tree{bounds: make([]uint64, d)}
	for i := range t.bounds {
		t.bounds[i] = binary.LittleEndian.Uint64(data[:8])
		data = data[8:]
	}
	t.expDepth = int(binary.LittleEndian.Uint32(data[:4]))
	data = data[4:]
	if t.expDepth < 0 || t.expDepth > 24 {
		return nil, fmt.Errorf("embed: bad explicit depth %d", t.expDepth)
	}
	n := (1 << uint(t.expDepth)) - 1
	if len(data) != 8*n {
		return nil, fmt.Errorf("embed: cut payload %d bytes, want %d", len(data), 8*n)
	}
	t.cuts = make([]uint64, n)
	for i := range t.cuts {
		t.cuts[i] = binary.LittleEndian.Uint64(data[:8])
		data = data[8:]
	}
	return t, nil
}
