// Package topo describes the two backbone networks of the paper's
// evaluation — Abilene (11 routers, North America) and GÉANT (23
// routers, Europe) — and derives a wide-area latency model from the
// routers' real geographic locations.
//
// The paper deployed MIND on PlanetLab machines chosen to sit in the
// same cities as the backbone routers, so that overlay links experienced
// realistic propagation delays (§4.2). We reproduce that by computing
// great-circle distances between router cities and converting them to
// one-way delays at an effective signal speed below c (fiber paths are
// neither straight nor lit at vacuum speed).
package topo

import (
	"fmt"
	"math"
	"time"
)

// Network identifies which backbone a router belongs to.
type Network uint8

const (
	// Abilene is the Internet2 backbone (NetFlow sampled at 1/100).
	Abilene Network = iota
	// GEANT is the European research backbone (NetFlow sampled at 1/1000).
	GEANT
)

func (n Network) String() string {
	if n == Abilene {
		return "Abilene"
	}
	return "GÉANT"
}

// SamplingRate returns the packet sampling denominator the paper reports
// for each network's NetFlow feeds (§4.2): 1/100 on Abilene, 1/1000 on
// GÉANT.
func (n Network) SamplingRate() int {
	if n == Abilene {
		return 100
	}
	return 1000
}

// Router is one backbone PoP.
type Router struct {
	Name    string // short router code, e.g. "CHIN"
	City    string
	Network Network
	Lat     float64 // degrees north
	Lon     float64 // degrees east
	// Weight is the PoP's relative share of the network's flow-record
	// volume; used by the traffic generator to shape per-monitor rates.
	Weight float64
}

// AbileneRouters returns the 11 Abilene backbone routers of 2004. The
// router codes match the ones the paper prints in its anomaly-path
// results (§5: CHIN, DNVR, IPLS, KSCY, LOSA, SNVA, ...).
func AbileneRouters() []Router {
	return []Router{
		{Name: "ATLA", City: "Atlanta", Network: Abilene, Lat: 33.75, Lon: -84.39, Weight: 1.1},
		{Name: "CHIN", City: "Chicago", Network: Abilene, Lat: 41.88, Lon: -87.63, Weight: 1.6},
		{Name: "DNVR", City: "Denver", Network: Abilene, Lat: 39.74, Lon: -104.98, Weight: 0.9},
		{Name: "HSTN", City: "Houston", Network: Abilene, Lat: 29.76, Lon: -95.37, Weight: 0.8},
		{Name: "IPLS", City: "Indianapolis", Network: Abilene, Lat: 39.77, Lon: -86.16, Weight: 1.3},
		{Name: "KSCY", City: "Kansas City", Network: Abilene, Lat: 39.10, Lon: -94.58, Weight: 0.7},
		{Name: "LOSA", City: "Los Angeles", Network: Abilene, Lat: 34.05, Lon: -118.24, Weight: 1.2},
		{Name: "NYCM", City: "New York", Network: Abilene, Lat: 40.71, Lon: -74.01, Weight: 1.7},
		{Name: "SNVA", City: "Sunnyvale", Network: Abilene, Lat: 37.37, Lon: -122.04, Weight: 1.2},
		{Name: "STTL", City: "Seattle", Network: Abilene, Lat: 47.61, Lon: -122.33, Weight: 0.8},
		{Name: "WASH", City: "Washington DC", Network: Abilene, Lat: 38.91, Lon: -77.04, Weight: 1.5},
	}
}

// GeantRouters returns the 23 GÉANT PoPs of 2004.
func GeantRouters() []Router {
	return []Router{
		{Name: "AT", City: "Vienna", Network: GEANT, Lat: 48.21, Lon: 16.37, Weight: 1.0},
		{Name: "BE", City: "Brussels", Network: GEANT, Lat: 50.85, Lon: 4.35, Weight: 0.8},
		{Name: "CH", City: "Geneva", Network: GEANT, Lat: 46.20, Lon: 6.14, Weight: 1.2},
		{Name: "CY", City: "Nicosia", Network: GEANT, Lat: 35.17, Lon: 33.36, Weight: 0.3},
		{Name: "CZ", City: "Prague", Network: GEANT, Lat: 50.08, Lon: 14.44, Weight: 0.9},
		{Name: "DE", City: "Frankfurt", Network: GEANT, Lat: 50.11, Lon: 8.68, Weight: 2.0},
		{Name: "DK", City: "Copenhagen", Network: GEANT, Lat: 55.68, Lon: 12.57, Weight: 0.9},
		{Name: "EE", City: "Tallinn", Network: GEANT, Lat: 59.44, Lon: 24.75, Weight: 0.3},
		{Name: "ES", City: "Madrid", Network: GEANT, Lat: 40.42, Lon: -3.70, Weight: 1.0},
		{Name: "FR", City: "Paris", Network: GEANT, Lat: 48.86, Lon: 2.35, Weight: 1.6},
		{Name: "GR", City: "Athens", Network: GEANT, Lat: 37.98, Lon: 23.73, Weight: 0.6},
		{Name: "HR", City: "Zagreb", Network: GEANT, Lat: 45.81, Lon: 15.98, Weight: 0.4},
		{Name: "HU", City: "Budapest", Network: GEANT, Lat: 47.50, Lon: 19.04, Weight: 0.6},
		{Name: "IE", City: "Dublin", Network: GEANT, Lat: 53.35, Lon: -6.26, Weight: 0.5},
		{Name: "IL", City: "Tel Aviv", Network: GEANT, Lat: 32.09, Lon: 34.78, Weight: 0.4},
		{Name: "IT", City: "Milan", Network: GEANT, Lat: 45.46, Lon: 9.19, Weight: 1.3},
		{Name: "LU", City: "Luxembourg", Network: GEANT, Lat: 49.61, Lon: 6.13, Weight: 0.2},
		{Name: "NL", City: "Amsterdam", Network: GEANT, Lat: 52.37, Lon: 4.90, Weight: 1.8},
		{Name: "PL", City: "Poznan", Network: GEANT, Lat: 52.41, Lon: 16.93, Weight: 0.7},
		{Name: "PT", City: "Lisbon", Network: GEANT, Lat: 38.72, Lon: -9.14, Weight: 0.5},
		{Name: "SE", City: "Stockholm", Network: GEANT, Lat: 59.33, Lon: 18.07, Weight: 1.0},
		{Name: "SI", City: "Ljubljana", Network: GEANT, Lat: 46.06, Lon: 14.51, Weight: 0.3},
		{Name: "UK", City: "London", Network: GEANT, Lat: 51.51, Lon: -0.13, Weight: 1.9},
	}
}

// Combined returns the 34-router Abilene+GÉANT deployment of the
// baseline experiment (§4.2: 11 North American + 23 European nodes).
func Combined() []Router {
	return append(AbileneRouters(), GeantRouters()...)
}

// ByName indexes routers by Name.
func ByName(rs []Router) map[string]Router {
	m := make(map[string]Router, len(rs))
	for _, r := range rs {
		m[r.Name] = r
	}
	return m
}

const earthRadiusKm = 6371.0

// DistanceKm returns the great-circle distance between two routers.
func DistanceKm(a, b Router) float64 {
	la1, lo1 := a.Lat*math.Pi/180, a.Lon*math.Pi/180
	la2, lo2 := b.Lat*math.Pi/180, b.Lon*math.Pi/180
	dla, dlo := la2-la1, lo2-lo1
	h := math.Sin(dla/2)*math.Sin(dla/2) + math.Cos(la1)*math.Cos(la2)*math.Sin(dlo/2)*math.Sin(dlo/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}

// LatencyModel converts geography into one-way propagation delays.
type LatencyModel struct {
	// SpeedKmPerMs is the effective signal speed; ~200 km/ms is light in
	// fiber, and the default 140 km/ms additionally accounts for
	// non-great-circle fiber routes.
	SpeedKmPerMs float64
	// FloorMs is the minimum one-way delay (last-mile, switching).
	FloorMs float64
}

// DefaultLatencyModel returns the model used by the experiments.
func DefaultLatencyModel() LatencyModel {
	return LatencyModel{SpeedKmPerMs: 140, FloorMs: 0.5}
}

// OneWay returns the modelled one-way delay between two routers.
func (m LatencyModel) OneWay(a, b Router) time.Duration {
	ms := DistanceKm(a, b)/m.SpeedKmPerMs + m.FloorMs
	return time.Duration(ms * float64(time.Millisecond))
}

// LatencyFunc builds a simnet-compatible latency function over a set of
// routers whose endpoint addresses are produced by addrOf. Unknown
// addresses get the fallback delay.
func LatencyFunc(rs []Router, addrOf func(Router) string, fallback time.Duration) func(from, to string) time.Duration {
	m := DefaultLatencyModel()
	byAddr := make(map[string]Router, len(rs))
	for _, r := range rs {
		byAddr[addrOf(r)] = r
	}
	return func(from, to string) time.Duration {
		a, okA := byAddr[from]
		b, okB := byAddr[to]
		if !okA || !okB {
			return fallback
		}
		return m.OneWay(a, b)
	}
}

// Addr derives the canonical endpoint address for a router, e.g.
// "abilene-CHIN" or "geant-DE".
func Addr(r Router) string {
	if r.Network == Abilene {
		return fmt.Sprintf("abilene-%s", r.Name)
	}
	return fmt.Sprintf("geant-%s", r.Name)
}
