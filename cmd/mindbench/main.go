// Command mindbench regenerates the paper's tables and figures on the
// simulated substrate and prints them as aligned text tables.
//
// Usage:
//
//	mindbench -exp fig9                # one experiment
//	mindbench -exp all -scale 0.1      # everything, smaller workloads
//	mindbench -exp all -json out.json  # also write headline metrics as JSON
//	mindbench -list                    # list experiment ids
//
// Scale 1.0 runs paper-shaped workloads (day-long traces, 102-node
// overlays); smaller scales shrink durations and rates proportionally
// while preserving the qualitative shapes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"mind/internal/experiments"
)

// jsonReport is one experiment's machine-readable summary: the headline
// Values plus run provenance, so CI can archive a comparable data point
// per commit.
type jsonReport struct {
	ID     string             `json:"id"`
	Title  string             `json:"title"`
	Seed   int64              `json:"seed"`
	Scale  float64            `json:"scale"`
	WallS  float64            `json:"wall_s"`
	Values map[string]float64 `json:"values"`
}

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id to run, or 'all'")
		seed     = flag.Int64("seed", 20050405, "deterministic seed")
		scale    = flag.Float64("scale", 0.25, "workload scale in (0,1]")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		jsonPath = flag.String("json", "", "write headline metrics to this file as JSON")
		quiet    = flag.Bool("quiet", false, "suppress the text tables (useful with -json)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: mindbench -exp <id>|all [-seed N] [-scale F] [-json FILE]; -list for ids")
		os.Exit(2)
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	var out []jsonReport
	failed := 0
	for _, id := range ids {
		start := time.Now()
		rep, err := experiments.Run(id, *seed, *scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			failed++
			continue
		}
		wall := time.Since(start).Seconds()
		if !*quiet {
			fmt.Print(rep.String())
			fmt.Printf("(%s in %.1fs wall)\n\n", id, wall)
		}
		out = append(out, jsonReport{
			ID:     rep.ID,
			Title:  rep.Title,
			Seed:   *seed,
			Scale:  *scale,
			WallS:  wall,
			Values: rep.Values,
		})
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "mindbench: marshal: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mindbench: %v\n", err)
			os.Exit(1)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
