package wire

import (
	"testing"

	"mind/internal/bitstr"
)

// benchMessages is a representative hot-path message mix: a routed
// insert, a small covering query response, and an insert ack.
func benchMessages() []Message {
	code := bitstr.New(0b1011, 4)
	return []Message{
		&Insert{
			ReqID: 81, OriginAddr: "10.0.0.1:7001", Index: "index1-fanout",
			Version: 3, RecID: 991, Rec: []uint64{123456, 77, 4242, 9},
			Target: code, Hops: 2,
		},
		&QueryResp{
			ReqID: 82, From: NodeInfo{Addr: "10.0.0.2:7001", Code: code},
			HasCover: true, Cover: code, Versions: []uint64{3},
			RecID: []uint64{1, 2, 3},
			Recs:  [][]uint64{{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10, 11, 12}},
			Hops:  3,
		},
		&InsertAck{ReqID: 81, StoredAt: NodeInfo{Addr: "10.0.0.2:7001", Code: code}, Hops: 2},
	}
}

// BenchmarkWireEncodePooled measures per-message encode cost and
// allocations on the hot-path mix, with encode buffers recycled the way
// the batch coalescer recycles them after a flush. Run with -benchmem;
// the allocs/op delta against main is the coalescer's steady-state win.
func BenchmarkWireEncodePooled(b *testing.B) {
	msgs := benchMessages()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data := Encode(msgs[i%len(msgs)])
		RecycleBuf(data)
	}
}

// BenchmarkWireEncode measures the plain encode path where the caller
// keeps the buffer (no recycling) — the per-record Insert path.
func BenchmarkWireEncode(b *testing.B) {
	msgs := benchMessages()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Encode(msgs[i%len(msgs)])
	}
}

// BenchmarkWireEncodeBatch measures envelope assembly: 32 encoded
// sub-messages wrapped into one Batch, as the coalescer flushes them.
func BenchmarkWireEncodeBatch(b *testing.B) {
	msgs := benchMessages()
	subs := make([][]byte, 32)
	for i := range subs {
		subs[i] = Encode(msgs[i%len(msgs)])
	}
	env := &Batch{Msgs: subs}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data := Encode(env)
		RecycleBuf(data)
	}
}
