// Command mindload drives a synthetic monitoring workload against a
// running TCP MIND deployment: it creates the paper's Index-2 if absent,
// streams aggregated-and-filtered flow records into the overlay through
// one or more entry nodes, and periodically issues the §4.1 monitoring
// queries, printing latency and recall statistics — a smoke/load tool
// for real deployments.
//
//	mindload -nodes 127.0.0.1:7001,127.0.0.1:7002 -duration 60s -rate 50
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"mind/internal/aggregate"
	"mind/internal/flowgen"
	"mind/internal/metrics"
	"mind/internal/schema"
	"mind/internal/transport/tcpnet"
	"mind/internal/wire"
)

func main() {
	var (
		nodesFlag = flag.String("nodes", "127.0.0.1:7001", "comma-separated MIND node addresses")
		duration  = flag.Duration("duration", 30*time.Second, "how long to drive load")
		rate      = flag.Float64("rate", 50, "synthetic flows per second per monitor")
		seed      = flag.Int64("seed", 1, "workload seed")
		queryGap  = flag.Duration("query-every", 5*time.Second, "interval between monitoring queries")
		batchN    = flag.Int("batch", 1, "coalesce up to N client inserts per node into one wire.Batch (1 = off)")
		retryBase = flag.Duration("retry-base", 500*time.Millisecond, "initial client retransmission backoff (0 disables retries)")
		maxRetry  = flag.Int("max-retries", 4, "client retransmissions per un-acked insert")
	)
	flag.Parse()
	nodes := strings.Split(*nodesFlag, ",")

	if *streamMode {
		runStream(nodes, *duration, *seed)
		return
	}

	ep, err := tcpnet.Listen("127.0.0.1:0")
	if err != nil {
		die("listen: %v", err)
	}
	defer ep.Close()

	// pendingInsert is one un-acked client insert: everything needed to
	// retransmit it on a doubling backoff until the entry node's ack
	// (idempotent server-side — a duplicate replays the cached ack).
	type pendingInsert struct {
		t0       time.Time
		node     string
		data     []byte
		attempts int // retransmissions so far
		nextAt   time.Time
	}

	var mu sync.Mutex
	insertLat := metrics.NewDist()
	queryLat := metrics.NewDist()
	pendingIns := map[uint64]*pendingInsert{}
	pendingQry := map[uint64]time.Time{}
	inserted, failed, queries, incomplete := 0, 0, 0, 0
	retransmits, totalInserts := 0, 0
	var reqSeq uint64

	ep.SetHandler(func(from string, data []byte) {
		m, err := wire.Decode(data)
		if err != nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		switch r := m.(type) {
		case *wire.ClientAck:
			if p, ok := pendingIns[r.ReqID]; ok {
				delete(pendingIns, r.ReqID)
				if r.OK {
					inserted++
					insertLat.AddDuration(time.Since(p.t0))
				} else {
					failed++
				}
			}
		case *wire.ClientQueryResp:
			if t0, ok := pendingQry[r.ReqID]; ok {
				delete(pendingQry, r.ReqID)
				queries++
				queryLat.AddDuration(time.Since(t0))
				if !r.Complete {
					incomplete++
				}
			}
		}
	})

	horizon := uint64(time.Now().Unix()) + 7*86400
	idx2 := schema.Index2(horizon)
	// Create the index (idempotent: an "already exists" error is fine).
	ci := &wire.ClientCreateIndex{ReqID: 1, Schema: idx2}
	if err := ep.Send(nodes[0], wire.Encode(ci)); err != nil {
		die("create-index: %v", err)
	}
	time.Sleep(time.Second)

	gcfg := flowgen.DefaultConfig(*seed)
	gcfg.Routers = gcfg.Routers[:len(nodes)*2]
	gcfg.BaseFlowsPerSec = *rate
	g := flowgen.New(gcfg)

	start := time.Now()
	now := uint64(time.Now().Unix())

	// Client-side coalescing: buffer encoded ClientInserts per entry node
	// and ship each group as one wire.Batch envelope.
	batchBuf := make(map[string][][]byte)
	var batchesSent, batchedMsgs int
	flushNode := func(node string) {
		msgs := batchBuf[node]
		if len(msgs) == 0 {
			return
		}
		delete(batchBuf, node)
		if len(msgs) == 1 {
			_ = ep.Send(node, msgs[0])
			return
		}
		batchesSent++
		batchedMsgs += len(msgs)
		_ = ep.Send(node, wire.Encode(&wire.Batch{Msgs: msgs}))
	}
	flushAll := func() {
		for node := range batchBuf {
			flushNode(node)
		}
	}
	sendInsert := func(node string, data []byte) {
		if *batchN <= 1 {
			_ = ep.Send(node, data)
			return
		}
		batchBuf[node] = append(batchBuf[node], data)
		if len(batchBuf[node]) >= *batchN {
			flushNode(node)
		}
	}

	// retransmitDue resends every pending insert whose backoff elapsed:
	// doubling delay per attempt, straight to the entry node (a retry
	// should not sit in a coalescing buffer).
	retransmitDue := func() {
		if *retryBase <= 0 || *maxRetry <= 0 {
			return
		}
		now := time.Now()
		type resend struct {
			node string
			data []byte
		}
		var due []resend
		mu.Lock()
		for _, p := range pendingIns {
			if p.attempts >= *maxRetry || now.Before(p.nextAt) {
				continue
			}
			p.attempts++
			p.nextAt = now.Add(*retryBase << uint(p.attempts))
			retransmits++
			due = append(due, resend{node: p.node, data: p.data})
		}
		mu.Unlock()
		for _, r := range due {
			_ = ep.Send(r.node, r.data)
		}
	}

	w := aggregate.NewWindower(aggregate.Config{WindowSec: 30}, func(ws uint64, aggs []*aggregate.Agg) {
		for _, a := range aggs {
			rec, ok := aggregate.Index2Record(ws, a)
			if !ok {
				continue
			}
			node := nodes[a.Key.Node%len(nodes)]
			mu.Lock()
			reqSeq++
			id := reqSeq + 100
			mu.Unlock()
			msg := &wire.ClientInsert{ReqID: id, Index: idx2.Tag, Rec: rec}
			data := wire.Encode(msg)
			mu.Lock()
			pendingIns[id] = &pendingInsert{
				t0:     time.Now(),
				node:   node,
				data:   data,
				nextAt: time.Now().Add(*retryBase),
			}
			totalInserts++
			mu.Unlock()
			sendInsert(node, data)
		}
	})

	lastQuery := time.Now()
	for t := now; time.Since(start) < *duration; t++ {
		g.GenerateSecond(t, func(f flowgen.Flow) { w.Add(f) })
		flushAll() // bound client-side batch latency to one generated second
		retransmitDue()
		if time.Since(lastQuery) >= *queryGap {
			lastQuery = time.Now()
			mu.Lock()
			reqSeq++
			id := reqSeq + 100
			pendingQry[id] = time.Now()
			mu.Unlock()
			q := &wire.ClientQuery{ReqID: id, Index: idx2.Tag, Rect: schema.Rect{
				Lo: []uint64{0, t - 300, 100_000},
				Hi: []uint64{0xffffffff, t, schema.OctetsBound},
			}}
			_ = ep.Send(nodes[int(id)%len(nodes)], wire.Encode(q))
		}
		// Pace generation at ~1 simulated second per 100 ms of wall time.
		time.Sleep(100 * time.Millisecond)
	}
	w.Flush()
	flushAll()
	// Drain: keep retransmitting due entries until everything acked or
	// the retry budget is spent.
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		mu.Lock()
		left := len(pendingIns)
		mu.Unlock()
		if left == 0 {
			break
		}
		retransmitDue()
		time.Sleep(100 * time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("inserts: %d acked, %d failed, %d outstanding\n", inserted, failed, len(pendingIns))
	if totalInserts > 0 {
		fmt.Printf("  retransmits: %d total, %.3f per insert; p99 insert latency %.1f ms\n",
			retransmits, float64(retransmits)/float64(totalInserts), insertLat.Percentile(99)*1000)
	}
	if *batchN > 1 && batchesSent > 0 {
		fmt.Printf("batches: %d sent, %.2f inserts/batch\n",
			batchesSent, float64(batchedMsgs)/float64(batchesSent))
	}
	fmt.Printf("  latency %s\n", insertLat.Summarize())
	fmt.Printf("queries: %d answered (%d incomplete), %d outstanding\n", queries, incomplete, len(pendingQry))
	fmt.Printf("  latency %s\n", queryLat.Summarize())
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
