package hypercube

import (
	"sort"

	"mind/internal/bitstr"
	"mind/internal/wire"
)

// Join starts the join protocol against a seed node already in the
// overlay. The protocol follows Adler et al. as adapted by the paper
// (§3.3): sample a node by routing a random code, pick the shallowest
// node in the sampled neighborhood, ask it to split. Concurrent joins to
// the same neighborhood serialize via optimistic prepare/commit with
// shallower targets preempting deeper uncommitted ones (Fig 4).
// Completion is reported through Callbacks.OnJoined; rejections and
// timeouts retry automatically with backoff.
func (o *Overlay) Join(seed string) {
	o.mu.Lock()
	if o.joined || o.joining != nil {
		o.mu.Unlock()
		return
	}
	o.joining = &joinAttempt{seeds: []string{seed}}
	o.mu.Unlock()
	o.joinLookup()
}

// joinLookup (re)starts the sampling phase.
func (o *Overlay) joinLookup() {
	o.mu.Lock()
	if o.joined || o.joining == nil || o.closed {
		o.mu.Unlock()
		return
	}
	j := o.joining
	j.attempt++
	j.reqID = uint64(j.attempt)<<32 | uint64(o.rng.Uint32())
	target := bitstr.New(o.rng.Uint64()>>(64-uint(o.cfg.LookupDepth)), o.cfg.LookupDepth)
	// Rotate through the seed list across attempts: a post-step-down
	// rejoin must not spin forever on a winner that died before the
	// rejoin completed.
	seed := j.seeds[(j.attempt-1)%len(j.seeds)]
	reqID := j.reqID
	if j.timer != nil {
		j.timer.Stop()
	}
	j.timer = o.clock.AfterFunc(o.cfg.JoinTimeout, o.joinRetry)
	o.mu.Unlock()

	o.send(seed, &wire.JoinLookup{
		ReqID:      reqID,
		JoinerAddr: o.ep.Addr(),
		Target:     target,
	})
}

// joinRetry restarts the join after a timeout or rejection.
func (o *Overlay) joinRetry() {
	o.mu.Lock()
	if o.joined || o.joining == nil || o.closed {
		o.mu.Unlock()
		return
	}
	j := o.joining
	if j.timer != nil {
		j.timer.Stop()
	}
	j.timer = o.clock.AfterFunc(o.cfg.JoinRetryBackoff, o.joinLookup)
	o.mu.Unlock()
}

// handleJoinLookup greedy-routes the lookup toward its random target; the
// owner (or the closest node at a dead end) answers with its
// neighborhood.
func (o *Overlay) handleJoinLookup(_ string, m *wire.JoinLookup) {
	o.mu.Lock()
	if !o.joined {
		o.mu.Unlock()
		return
	}
	if !o.ownsLocked(m.Target) && m.Hops < 64 {
		if next, ok := o.nextHopLocked(m.Target); ok {
			o.mu.Unlock()
			fwd := *m
			fwd.Hops++
			o.send(next, &fwd)
			return
		}
		// Dead end: answer from here; the sample is still useful.
	}
	resp := &wire.JoinLookupResp{
		ReqID: m.ReqID,
		Self:  wire.NodeInfo{Addr: o.ep.Addr(), Code: o.code},
	}
	for _, c := range o.contacts {
		resp.Neighbors = append(resp.Neighbors, c.info)
	}
	sort.Slice(resp.Neighbors, func(i, j int) bool { return resp.Neighbors[i].Addr < resp.Neighbors[j].Addr })
	o.mu.Unlock()
	o.send(m.JoinerAddr, resp)
}

// handleJoinLookupResp picks the shallowest node in the sampled
// neighborhood and asks it to split. Lookups are also used by joined
// nodes to repair empty neighbor levels (ReqID 0); those responses just
// refresh the contact table.
func (o *Overlay) handleJoinLookupResp(m *wire.JoinLookupResp) {
	o.mu.Lock()
	if o.joined {
		o.learn(m.Self)
		for _, ni := range m.Neighbors {
			o.learnGossip(ni)
		}
		o.mu.Unlock()
		return
	}
	j := o.joining
	if j == nil || j.reqID != m.ReqID {
		o.mu.Unlock()
		return
	}
	best := m.Self
	for _, n := range m.Neighbors {
		if n.Code.Len() < best.Code.Len() ||
			(n.Code.Len() == best.Code.Len() && n.Code.Less(best.Code)) {
			best = n
		}
	}
	reqID := j.reqID
	if j.timer != nil {
		j.timer.Stop()
	}
	j.timer = o.clock.AfterFunc(o.cfg.JoinTimeout, o.joinRetry)
	o.mu.Unlock()

	o.send(best.Addr, &wire.JoinRequest{ReqID: reqID, JoinerAddr: o.ep.Addr()})
}

// handleJoinRequest is the split-target side: optimistically accept and
// run the prepare phase across the neighborhood.
func (o *Overlay) handleJoinRequest(_ string, m *wire.JoinRequest) {
	o.mu.Lock()
	if !o.joined || o.split != nil || o.code.Len() >= bitstr.MaxLen {
		o.mu.Unlock()
		o.send(m.JoinerAddr, &wire.JoinReject{ReqID: m.ReqID, Reason: "busy"})
		return
	}
	s := &splitState{
		reqID:      m.ReqID,
		joinerAddr: m.JoinerAddr,
		waiting:    make(map[string]bool),
	}
	for addr := range o.contacts {
		s.waiting[addr] = true
	}
	o.split = s
	self := wire.NodeInfo{Addr: o.ep.Addr(), Code: o.code}
	var peers []string
	for addr := range s.waiting {
		peers = append(peers, addr)
	}
	if len(peers) == 0 {
		// Sole node (or no live contacts): commit immediately.
		o.mu.Unlock()
		o.commitSplit()
		return
	}
	s.timer = o.clock.AfterFunc(o.cfg.PrepareTimeout, o.abortSplit)
	o.mu.Unlock()

	sort.Strings(peers)
	for _, addr := range peers {
		o.send(addr, &wire.JoinPrepare{Target: self})
	}
}

// handleJoinPrepare is the approver side. The deadlock-freedom rule: an
// uncommitted pending prepare from a deeper target is preempted by a
// shallower one; the preempted target gets a revocation and aborts.
func (o *Overlay) handleJoinPrepare(from string, m *wire.JoinPrepare) {
	o.mu.Lock()
	self := wire.NodeInfo{Addr: o.ep.Addr(), Code: o.code}
	// A pending prepare whose commit or abort never arrived (lost
	// message, evicted contact) must not block this neighborhood
	// forever.
	if p := o.pending; p != nil && o.clock.Now().Sub(p.at) > 2*o.cfg.PrepareTimeout {
		o.pending = nil
	}
	if p := o.pending; p != nil && p.target.Addr != m.Target.Addr {
		if m.Target.Code.Len() < p.target.Code.Len() {
			// Preempt the deeper pending target.
			revoked := p.target
			o.pending = &pendingPrepare{target: m.Target, at: o.clock.Now()}
			o.mu.Unlock()
			o.send(revoked.Addr, &wire.JoinPrepareResp{From: self, TargetCode: revoked.Code, Approve: false})
			o.send(from, &wire.JoinPrepareResp{From: self, TargetCode: m.Target.Code, Approve: true})
			return
		}
		o.mu.Unlock()
		o.send(from, &wire.JoinPrepareResp{From: self, TargetCode: m.Target.Code, Approve: false})
		return
	}
	o.pending = &pendingPrepare{target: m.Target, at: o.clock.Now()}
	o.mu.Unlock()
	o.send(from, &wire.JoinPrepareResp{From: self, TargetCode: m.Target.Code, Approve: true})
}

// handleJoinPrepareResp gathers approvals on the split-target side.
func (o *Overlay) handleJoinPrepareResp(m *wire.JoinPrepareResp) {
	o.mu.Lock()
	s := o.split
	if s == nil || !m.TargetCode.Equal(o.code) {
		o.mu.Unlock()
		return
	}
	if !m.Approve {
		o.mu.Unlock()
		o.abortSplit()
		return
	}
	delete(s.waiting, m.From.Addr)
	done := len(s.waiting) == 0
	o.mu.Unlock()
	if done {
		o.commitSplit()
	}
}

// abortSplit cancels an uncommitted split: clear neighbor pendings and
// bounce the joiner.
func (o *Overlay) abortSplit() {
	o.mu.Lock()
	s := o.split
	if s == nil {
		o.mu.Unlock()
		return
	}
	o.split = nil
	if s.timer != nil {
		s.timer.Stop()
	}
	self := wire.NodeInfo{Addr: o.ep.Addr(), Code: o.code}
	var peers []string
	for addr := range o.contacts {
		peers = append(peers, addr)
	}
	o.mu.Unlock()

	sort.Strings(peers)
	for _, addr := range peers {
		o.send(addr, &wire.JoinAbort{Target: self})
	}
	o.send(s.joinerAddr, &wire.JoinReject{ReqID: s.reqID, Reason: "preempted"})
}

func (o *Overlay) handleJoinAbort(m *wire.JoinAbort) {
	o.mu.Lock()
	if p := o.pending; p != nil && p.target.Addr == m.Target.Addr {
		o.pending = nil
	}
	o.mu.Unlock()
}

// commitSplit finalizes a join on the target side: deepen our code,
// admit the joiner as our sibling, inform the neighborhood.
func (o *Overlay) commitSplit() {
	o.mu.Lock()
	s := o.split
	if s == nil {
		o.mu.Unlock()
		return
	}
	o.split = nil
	if s.timer != nil {
		s.timer.Stop()
	}
	oldCode := o.code
	o.code = oldCode.Append(0)
	// A committed split is a membership change: bump the fencing epoch
	// and hand it to the joiner, so both halves of the new region outrank
	// any stale claim on the old one.
	o.epoch++
	o.repairAttempts = make(map[int]int)
	joinerCode := oldCode.Append(1)
	joiner := wire.NodeInfo{Addr: s.joinerAddr, Code: joinerCode}
	selfNew := wire.NodeInfo{Addr: o.ep.Addr(), Code: o.code}

	accept := &wire.JoinAccept{
		ReqID:   s.reqID,
		NewCode: joinerCode,
		Sibling: selfNew,
		Epoch:   o.epoch,
	}
	var peers []string
	for addr, c := range o.contacts {
		accept.Neighbors = append(accept.Neighbors, c.info)
		peers = append(peers, addr)
	}
	sort.Strings(peers)
	sort.Slice(accept.Neighbors, func(i, j int) bool { return accept.Neighbors[i].Addr < accept.Neighbors[j].Addr })
	o.learn(joiner)
	o.mu.Unlock()

	if o.cb.IndexDefs != nil {
		accept.Indices = o.cb.IndexDefs()
	}
	o.send(s.joinerAddr, accept)
	commit := &wire.JoinCommit{OldCode: oldCode, Target: selfNew, Joiner: joiner}
	for _, addr := range peers {
		o.send(addr, commit)
	}
	if o.cb.OnSplit != nil {
		o.cb.OnSplit(oldCode, o.code, joiner)
	}
}

// handleJoinAccept completes the join on the joiner side.
func (o *Overlay) handleJoinAccept(m *wire.JoinAccept) {
	o.mu.Lock()
	j := o.joining
	if o.joined || j == nil || j.reqID != m.ReqID {
		o.mu.Unlock()
		return
	}
	if j.timer != nil {
		j.timer.Stop()
	}
	o.joining = nil
	o.joined = true
	o.code = m.NewCode
	if m.Epoch > o.epoch {
		o.epoch = m.Epoch
	}
	o.repairAttempts = make(map[int]int)
	o.learn(m.Sibling)
	for _, n := range m.Neighbors {
		o.learnGossip(n)
	}
	// A rejoin after a step-down already has a live heartbeat chain
	// (heartbeatTick reschedules itself while unjoined); starting a
	// second one would double the heartbeat rate forever.
	if !o.hbRunning {
		o.scheduleHeartbeatLocked()
	}
	self := wire.NodeInfo{Addr: o.ep.Addr(), Code: o.code}
	var peers []string
	for addr := range o.contacts {
		peers = append(peers, addr)
	}
	o.hbSeq++
	seq := o.hbSeq
	o.mu.Unlock()

	// Announce ourselves to the inherited neighborhood immediately. The
	// peer list came out of the contact map in iteration order; sends
	// draw jitter from the simulator's seeded RNG, so the order must be
	// deterministic for same-seed runs to be bit-identical.
	sort.Strings(peers)
	for _, addr := range peers {
		o.send(addr, &wire.Heartbeat{From: self, Seq: seq})
	}
	if o.cb.OnJoined != nil {
		o.cb.OnJoined(m)
	}
}

func (o *Overlay) handleJoinReject(m *wire.JoinReject) {
	o.mu.Lock()
	j := o.joining
	ok := !o.joined && j != nil && j.reqID == m.ReqID
	o.mu.Unlock()
	if ok {
		o.joinRetry()
	}
}

// handleJoinCommit updates the neighborhood after a committed split.
func (o *Overlay) handleJoinCommit(m *wire.JoinCommit) {
	o.mu.Lock()
	if p := o.pending; p != nil && p.target.Addr == m.Target.Addr {
		o.pending = nil
	}
	o.learn(m.Target) // the commit's sender
	o.learnGossip(m.Joiner)
	o.mu.Unlock()
}
