package summary

import (
	"sort"
	"sync"

	"mind/internal/schema"
)

// Sharded groups per-shard summaries aligned one-to-one with the record
// store's shards, so the (version, shard) aggregate fan-out resolves a
// store scan and a summary against the same record subset. The caller
// routes inserts with the store's own shard function
// (store.Sharded.ShardOf) to keep the two partitions identical.
type Sharded struct {
	shards []*Summary
}

// NewShardedSummary creates one empty summary per shard.
func NewShardedSummary(sch *schema.Schema, shards int, opts Options) *Sharded {
	if shards < 1 {
		shards = 1
	}
	s := &Sharded{shards: make([]*Summary, shards)}
	for i := range s.shards {
		s.shards[i] = New(sch, opts)
	}
	return s
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shard returns shard i's summary.
func (s *Sharded) Shard(i int) *Summary { return s.shards[i] }

// Insert adds rec to shard i's summary.
func (s *Sharded) Insert(i int, rec schema.Record) { s.shards[i].Insert(rec) }

// Fold force-folds every shard's delta.
func (s *Sharded) Fold() {
	for _, sh := range s.shards {
		sh.Fold()
	}
}

// FoldShard force-folds one shard's delta — the store merge hook, so a
// shard's summary folds whenever its record shard merges delta→static.
func (s *Sharded) FoldShard(i int) {
	if i >= 0 && i < len(s.shards) {
		s.shards[i].Fold()
	}
}

// Stats sums the per-shard stats (ops surface).
func (s *Sharded) Stats() (staticN uint64, deltaN int, folds uint64) {
	for _, sh := range s.shards {
		st, d, f := sh.Stats()
		staticN += st
		deltaN += d
		folds += f
	}
	return staticN, deltaN, folds
}

// Len returns the total summarized record count.
func (s *Sharded) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Versioned keys sharded summaries by index version, mirroring
// store.Versioned: the mind layer maintains one summary per (version,
// shard) next to the primary store and drops versions in lockstep with
// retirement purges.
type Versioned struct {
	sch    *schema.Schema
	shards int
	opts   Options
	mu     sync.RWMutex
	vers   map[uint32]*Sharded
}

// NewVersioned creates an empty container; shards must match the
// primary store's resolved shard count.
func NewVersioned(sch *schema.Schema, shards int, opts Options) *Versioned {
	if shards < 1 {
		shards = 1
	}
	return &Versioned{sch: sch, shards: shards, opts: opts.withDefaults(), vers: make(map[uint32]*Sharded)}
}

// Version returns the summary for a version, creating it if absent.
func (v *Versioned) Version(ver uint32) *Sharded {
	v.mu.RLock()
	s := v.vers[ver]
	v.mu.RUnlock()
	if s != nil {
		return s
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if s = v.vers[ver]; s == nil {
		s = NewShardedSummary(v.sch, v.shards, v.opts)
		v.vers[ver] = s
	}
	return s
}

// Get returns the summary for a version, or nil if absent.
func (v *Versioned) Get(ver uint32) *Sharded {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.vers[ver]
}

// Drop discards a version's summary (retirement purge).
func (v *Versioned) Drop(ver uint32) {
	v.mu.Lock()
	delete(v.vers, ver)
	v.mu.Unlock()
}

// Versions lists resident versions, ascending.
func (v *Versioned) Versions() []uint32 {
	v.mu.RLock()
	out := make([]uint32, 0, len(v.vers))
	for ver := range v.vers {
		out = append(out, ver)
	}
	v.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FoldShard force-folds shard i of every resident version. The snapshot
// is taken first so the folds run outside the container lock.
func (v *Versioned) FoldShard(i int) {
	v.mu.RLock()
	all := make([]*Sharded, 0, len(v.vers))
	for _, s := range v.vers {
		all = append(all, s)
	}
	v.mu.RUnlock()
	for _, s := range all {
		s.FoldShard(i)
	}
}

// Stats sums the per-version stats (ops surface).
func (v *Versioned) Stats() (staticN uint64, deltaN int, folds uint64) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	for _, s := range v.vers {
		st, d, f := s.Stats()
		staticN += st
		deltaN += d
		folds += f
	}
	return staticN, deltaN, folds
}

// Len returns the total summarized record count across versions.
func (v *Versioned) Len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	n := 0
	for _, s := range v.vers {
		n += s.Len()
	}
	return n
}
