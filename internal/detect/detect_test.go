package detect

import (
	"testing"

	"mind/internal/flowgen"
	"mind/internal/schema"
)

func cfgSmall() flowgen.Config {
	c := flowgen.DefaultConfig(77)
	c.NumDstPrefixes = 256
	c.NumSrcPrefixes = 256
	c.BaseFlowsPerSec = 5
	return c
}

func TestDetectsInjectedAlphaFlow(t *testing.T) {
	g := flowgen.New(cfgSmall())
	a := flowgen.Anomaly{
		Kind: flowgen.AlphaFlow, Start: 400, Duration: 120,
		SrcPrefix: flowgen.SrcPrefix(9), DstPrefix: flowgen.DstPrefix(17), DstPort: 80,
		Routers: []int{2, 5}, Intensity: 80_000_000,
	}
	g.Inject(a)
	d := New(Config{})
	g.Generate(0, 900, func(f flowgen.Flow) { d.Add(f) })
	events := d.Finish()
	found := false
	for _, e := range events {
		if e.Kind == Volume && e.MatchesAnomaly(a, 300) {
			found = true
			if len(e.Nodes) != 2 || e.Nodes[0] != 2 || e.Nodes[1] != 5 {
				t.Errorf("node set = %v, want [2 5]", e.Nodes)
			}
		}
	}
	if !found {
		t.Fatalf("alpha flow not detected; %d events", len(events))
	}
}

func TestDetectsDoSAndScanAsFanout(t *testing.T) {
	g := flowgen.New(cfgSmall())
	dos := flowgen.Anomaly{
		Kind: flowgen.DoS, Start: 100, Duration: 120,
		SrcPrefix: flowgen.SrcPrefix(30), DstPrefix: flowgen.DstPrefix(40), DstPort: 80,
		Routers: []int{1}, Intensity: 60,
	}
	scan := flowgen.Anomaly{
		Kind: flowgen.PortScan, Start: 350, Duration: 100,
		SrcPrefix: flowgen.SrcPrefix(60), DstPrefix: flowgen.DstPrefix(70), DstPort: 3306,
		Routers: []int{3}, Intensity: 50,
	}
	g.Inject(dos)
	g.Inject(scan)
	d := New(Config{FanoutThreshold: 1000})
	g.Generate(0, 600, func(f flowgen.Flow) { d.Add(f) })
	events := d.Finish()
	if Recall(events, []flowgen.Anomaly{dos, scan}, 300) != 1 {
		t.Fatalf("fanout anomalies missed; events: %v", events)
	}
}

func TestNoFalsePositivesOnQuietTraffic(t *testing.T) {
	g := flowgen.New(cfgSmall())
	d := New(Config{})
	g.Generate(0, 600, func(f flowgen.Flow) { d.Add(f) })
	events := d.Finish()
	for _, e := range events {
		if e.Kind == Fanout {
			t.Errorf("background traffic flagged as fanout anomaly: %v", e)
		}
	}
}

func TestWindowAttribution(t *testing.T) {
	d := New(Config{WindowSec: 300, VolumeThreshold: 1000})
	mk := func(ts uint64) flowgen.Flow {
		return flowgen.Flow{Node: 0, SrcIP: schema.IPv4(172, 16, 0, 1), DstIP: schema.IPv4(10, 0, 0, 1), Start: ts, Octets: 5000, Packets: 5}
	}
	d.Add(mk(10))
	d.Add(mk(400)) // next window
	events := d.Finish()
	if len(events) != 2 {
		t.Fatalf("events = %d, want one per window", len(events))
	}
	if events[0].WindowStart != 0 || events[1].WindowStart != 300 {
		t.Errorf("windows = %d, %d", events[0].WindowStart, events[1].WindowStart)
	}
}

func TestMultiNodeVolumeNormalization(t *testing.T) {
	// A flow seen at 4 monitors must not count 4× toward volume.
	d := New(Config{WindowSec: 300, VolumeThreshold: 3000})
	for node := 0; node < 4; node++ {
		d.Add(flowgen.Flow{Node: node, SrcIP: schema.IPv4(172, 16, 0, 1), DstIP: schema.IPv4(10, 0, 0, 1), Start: 5, Octets: 2500, Packets: 3})
	}
	events := d.Finish()
	if len(events) != 0 {
		t.Fatalf("multi-monitor inflation: %v", events)
	}
	// But a genuinely large flow on 4 monitors is still detected.
	d2 := New(Config{WindowSec: 300, VolumeThreshold: 3000})
	for node := 0; node < 4; node++ {
		d2.Add(flowgen.Flow{Node: node, SrcIP: schema.IPv4(172, 16, 0, 1), DstIP: schema.IPv4(10, 0, 0, 1), Start: 5, Octets: 5000, Packets: 5})
	}
	if len(d2.Finish()) != 1 {
		t.Fatal("large multi-monitor flow missed")
	}
}

func TestRecallEmptyTruth(t *testing.T) {
	if Recall(nil, nil, 300) != 1 {
		t.Error("vacuous recall should be 1")
	}
	a := flowgen.Anomaly{SrcPrefix: 1, DstPrefix: 2, Start: 0, Duration: 10}
	if Recall(nil, []flowgen.Anomaly{a}, 300) != 0 {
		t.Error("missed anomaly should give 0 recall")
	}
}

func TestEventString(t *testing.T) {
	e := Event{Kind: Volume, WindowStart: 300, SrcPrefix: schema.IPv4(172, 16, 0, 0), DstPrefix: schema.IPv4(10, 0, 0, 0), Octets: 5000, Nodes: []int{1, 2}}
	if e.String() == "" || Kind(0).String() != "volume" || Kind(1).String() != "fanout" {
		t.Error("string renderings broken")
	}
}
