package store

import (
	"math/rand"
	"testing"

	"mind/internal/schema"
)

func fullRect() schema.Rect {
	return schema.Rect{Lo: []uint64{0, 0, 0}, Hi: []uint64{9999, 9999, 9999}}
}

func TestStaticEmpty(t *testing.T) {
	s := NewStatic(sch3(), nil)
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Query(fullRect()); len(got) != 0 {
		t.Fatalf("empty static returned %d records", len(got))
	}
	if s.Count(fullRect()) != 0 {
		t.Fatal("empty static Count != 0")
	}
	s.All(func(schema.Record) bool {
		t.Fatal("empty static yielded a record")
		return false
	})
}

func TestStaticSingle(t *testing.T) {
	s := NewStatic(sch3(), []schema.Record{{10, 20, 30, 7}})
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	q := schema.Rect{Lo: []uint64{10, 20, 30}, Hi: []uint64{10, 20, 30}}
	if got := s.Query(q); len(got) != 1 || got[0][3] != 7 {
		t.Fatalf("point query = %v", got)
	}
	q2 := schema.Rect{Lo: []uint64{11, 0, 0}, Hi: []uint64{9999, 9999, 9999}}
	if got := s.Query(q2); len(got) != 0 {
		t.Fatalf("miss query = %v", got)
	}
}

func TestStaticMatchesScan(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 9, 63, 64, 65, 1000, 4096} {
		r := rand.New(rand.NewSource(int64(500 + n)))
		recs := make([]schema.Record, n)
		sc := NewScan(sch3())
		for i := range recs {
			recs[i] = randRec(r)
			sc.Insert(recs[i])
		}
		s := NewStatic(sch3(), recs) // takes ownership; sc holds its own copies
		if s.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, s.Len())
		}
		for q := 0; q < 40; q++ {
			rect := randRect(r)
			a, b := s.Query(rect), sc.Query(rect)
			if !sameRecs(a, b) {
				t.Fatalf("n=%d query %v: static %d recs, scan %d", n, rect, len(a), len(b))
			}
			if s.Count(rect) != len(b) {
				t.Fatalf("n=%d: Count = %d, want %d", n, s.Count(rect), len(b))
			}
		}
	}
}

func TestStaticDuplicatePoints(t *testing.T) {
	// Equal coordinates may land on either side of a median split; both
	// prunes must admit equality or duplicates vanish from results.
	recs := make([]schema.Record, 100)
	for i := range recs {
		recs[i] = schema.Record{42, 42, 42, uint64(i)}
	}
	s := NewStatic(sch3(), recs)
	q := schema.Rect{Lo: []uint64{42, 42, 42}, Hi: []uint64{42, 42, 42}}
	if got := s.Query(q); len(got) != 100 {
		t.Fatalf("duplicate point query returned %d of 100", len(got))
	}
	if s.Count(q) != 100 {
		t.Fatalf("Count = %d", s.Count(q))
	}
}

func TestStaticClampedRecords(t *testing.T) {
	s := NewStatic(sch3(), []schema.Record{{50000, 1, 1, 0}}) // x clamps to 9999
	q := schema.Rect{Lo: []uint64{9999, 0, 0}, Hi: []uint64{9999, 9999, 9999}}
	if len(s.Query(q)) != 1 {
		t.Error("clamped record not found in topmost region")
	}
}

// TestStaticVEBLayout checks structural invariants of the van Emde Boas
// placement: the root occupies slot 0, every slot is used exactly once,
// child links are in range and acyclic, and the k-d ordering invariant
// holds on every edge (left subtree <= node on the split dim, right
// subtree >= node).
func TestStaticVEBLayout(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for _, n := range []int{1, 2, 5, 31, 32, 33, 1000} {
		recs := make([]schema.Record, n)
		for i := range recs {
			recs[i] = randRec(r)
		}
		s := NewStatic(sch3(), recs)
		if len(s.recs) != n || len(s.kids) != 2*n || len(s.coords) != n*s.dims {
			t.Fatalf("n=%d: array sizes recs=%d kids=%d coords=%d", n, len(s.recs), len(s.kids), len(s.coords))
		}
		seen := make([]bool, n)
		depth := 0
		var walk func(node int32, dim, d int)
		walk = func(node int32, dim, d int) {
			if node < 0 {
				return
			}
			if node >= int32(n) {
				t.Fatalf("n=%d: child slot %d out of range", n, node)
			}
			if seen[node] {
				t.Fatalf("n=%d: slot %d reached twice (cycle or shared child)", n, node)
			}
			seen[node] = true
			if d > depth {
				depth = d
			}
			v := s.coords[int(node)*s.dims+dim]
			nd := (dim + 1) % s.dims
			if l := s.kids[2*node]; l >= 0 {
				if lv := s.coords[int(l)*s.dims+dim]; lv > v {
					t.Fatalf("n=%d: left child coord %d > parent %d on dim %d", n, lv, v, dim)
				}
				walk(l, nd, d+1)
			}
			if rt := s.kids[2*node+1]; rt >= 0 {
				if rv := s.coords[int(rt)*s.dims+dim]; rv < v {
					t.Fatalf("n=%d: right child coord %d < parent %d on dim %d", n, rv, v, dim)
				}
				walk(rt, nd, d+1)
			}
		}
		walk(0, 0, 1)
		for i, ok := range seen {
			if !ok {
				t.Fatalf("n=%d: slot %d unreachable from root", n, i)
			}
		}
		// Median builds are perfectly balanced; the fixed traversal stack
		// depends on this bound.
		limit := 0
		for m := n; m > 0; m >>= 1 {
			limit++
		}
		if depth > limit {
			t.Fatalf("n=%d: height %d exceeds floor(log2 n)+1 = %d", n, depth, limit)
		}
		if depth+1 > staticStackCap {
			t.Fatalf("n=%d: height %d would overflow the traversal stack", n, depth)
		}
	}
}

func TestStaticAllEarlyStop(t *testing.T) {
	r := rand.New(rand.NewSource(78))
	recs := make([]schema.Record, 100)
	for i := range recs {
		recs[i] = randRec(r)
	}
	s := NewStatic(sch3(), recs)
	n := 0
	s.All(func(schema.Record) bool { n++; return true })
	if n != 100 {
		t.Fatalf("All yielded %d", n)
	}
	n = 0
	s.All(func(schema.Record) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("early stop yielded %d", n)
	}
}

func BenchmarkStaticQuery(b *testing.B) {
	r := rand.New(rand.NewSource(37))
	recs := make([]schema.Record, 100000)
	for i := range recs {
		recs[i] = randRec(r)
	}
	s := NewStatic(sch3(), recs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Query(randRect(r))
	}
}

func BenchmarkStaticBulkLoad(b *testing.B) {
	r := rand.New(rand.NewSource(39))
	src := make([]schema.Record, 100000)
	for i := range src {
		src[i] = randRec(r)
	}
	recs := make([]schema.Record, len(src))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(recs, src)
		_ = NewStatic(sch3(), recs)
	}
}
