package summary

import (
	"math/rand"
	"sync"
	"testing"

	"mind/internal/schema"
	"mind/internal/store"
)

// testSchema mirrors the store tests' shape: three indexed dims with
// bounds, one payload attribute.
func testSchema() *schema.Schema {
	return &schema.Schema{
		Tag: "t",
		Attrs: []schema.Attr{
			{Name: "a", Kind: schema.KindUint, Max: 9999},
			{Name: "b", Kind: schema.KindUint, Max: 9999},
			{Name: "c", Kind: schema.KindUint, Max: 9999},
			{Name: "p", Kind: schema.KindUint},
		},
		IndexDims: 3,
	}
}

func randRec(r *rand.Rand) schema.Record {
	// Skewed first attribute so the sketch sees real heavy hitters.
	a := uint64(r.Intn(10000))
	if r.Intn(2) == 0 {
		a = uint64(r.Intn(8)) * 100
	}
	return schema.Record{a, uint64(r.Intn(10000)), uint64(r.Intn(10000)), uint64(r.Intn(1000))}
}

func randRect(r *rand.Rand) schema.Rect {
	rc := schema.Rect{Lo: make([]uint64, 3), Hi: make([]uint64, 3)}
	for d := 0; d < 3; d++ {
		if r.Intn(3) == 0 {
			rc.Lo[d], rc.Hi[d] = 0, 9999 // wildcard dim: whale shape
		} else {
			w := uint64(r.Intn(4000) + 1)
			lo := uint64(r.Intn(10000 - int(w)))
			rc.Lo[d], rc.Hi[d] = lo, lo+w
		}
	}
	return rc
}

// resolveExact finishes a Resolve the way the mind layer does: boundary
// cells are scanned exactly against the record set (here the flat
// slice standing in for the store shard) and folded in via Add.
func resolveExact(s *Summary, sch *schema.Schema, rect schema.Rect, recs []schema.Record) Agg {
	agg := s.Resolve(rect)
	for _, b := range agg.Boundary {
		for _, rec := range recs {
			if b.ContainsRecord(sch, rec) {
				agg.Add(rec)
			}
		}
	}
	return agg
}

// flatAgg is the oracle: a recount straight off the record slice.
func flatAgg(sch *schema.Schema, rect schema.Rect, recs []schema.Record) (count uint64, sums []uint64, hist map[uint64]uint64) {
	sums = make([]uint64, sch.Arity())
	hist = make(map[uint64]uint64)
	for _, rec := range recs {
		if rect.ContainsRecord(sch, rec) {
			count++
			for i := range sums {
				sums[i] += rec[i]
			}
			hist[rec[0]]++
		}
	}
	return
}

func checkAgg(t *testing.T, tag string, agg Agg, count uint64, sums []uint64, hist map[uint64]uint64) {
	t.Helper()
	if agg.Count != count {
		t.Fatalf("%s: Count = %d, want %d", tag, agg.Count, count)
	}
	for i := range sums {
		if agg.Sums[i] != sums[i] {
			t.Fatalf("%s: Sums[%d] = %d, want %d", tag, i, agg.Sums[i], sums[i])
		}
	}
	// Sketch: bracketing and containment against the exact histogram.
	seen := make(map[uint64]bool)
	for _, e := range agg.Sketch.Top() {
		seen[e.Key] = true
		truth := hist[e.Key]
		if truth > e.Count || e.Count-e.Err > truth {
			t.Fatalf("%s: key %d true %d outside [%d, %d]", tag, e.Key, truth, e.Count-e.Err, e.Count)
		}
	}
	for k, truth := range hist {
		if !seen[k] && truth > agg.Sketch.Floor() {
			t.Fatalf("%s: heavy key %d (%d > floor %d) unmonitored", tag, k, truth, agg.Sketch.Floor())
		}
	}
	if agg.Sketch.Exact() {
		for _, e := range agg.Sketch.Top() {
			if e.Count != hist[e.Key] {
				t.Fatalf("%s: exact-flagged sketch wrong for key %d: %d vs %d", tag, e.Key, e.Count, hist[e.Key])
			}
		}
	}
}

// TestSummaryDifferentialFlatRecount mirrors the store's differential
// fuzz: a random insert stream checked against a flat recount at a
// cadence that crosses fold boundaries mid-stream.
func TestSummaryDifferentialFlatRecount(t *testing.T) {
	sch := testSchema()
	for _, depth := range []int{2, 5, 8} {
		r := rand.New(rand.NewSource(int64(depth) * 41))
		s := New(sch, Options{Depth: depth, K: 16, DeltaMax: 32})
		var recs []schema.Record
		for i := 0; i < 2500; i++ {
			rec := randRec(r)
			s.Insert(rec)
			recs = append(recs, rec)
			if i%37 == 0 {
				rect := randRect(r)
				agg := resolveExact(s, sch, rect, recs)
				count, sums, hist := flatAgg(sch, rect, recs)
				checkAgg(t, "mid-stream", agg, count, sums, hist)
			}
		}
		// Full-space rect resolves purely from the root rollup.
		full := sch.FullRect()
		agg := s.Resolve(full)
		if len(agg.Boundary) != 0 {
			t.Fatalf("full rect produced %d boundary cells", len(agg.Boundary))
		}
		count, sums, hist := flatAgg(sch, full, recs)
		checkAgg(t, "full", agg, count, sums, hist)
	}
}

// TestSummaryFoldBoundaries pins behavior right at the delta fold
// threshold: resolves must agree with the oracle one insert before the
// fold, at it, and after it, and the fold counter must advance.
func TestSummaryFoldBoundaries(t *testing.T) {
	sch := testSchema()
	const deltaMax = 8
	cases := []int{deltaMax - 1, deltaMax, deltaMax + 1, 3*deltaMax - 1, 3 * deltaMax}
	for _, n := range cases {
		r := rand.New(rand.NewSource(int64(n)))
		s := New(sch, Options{Depth: 6, K: 8, DeltaMax: deltaMax})
		var recs []schema.Record
		for i := 0; i < n; i++ {
			rec := randRec(r)
			s.Insert(rec)
			recs = append(recs, rec)
		}
		if s.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, s.Len())
		}
		wantFolds := uint64(n / deltaMax)
		if _, deltaN, folds := s.Stats(); folds != wantFolds || deltaN != n%deltaMax {
			t.Fatalf("n=%d: folds=%d deltaN=%d, want %d/%d", n, folds, deltaN, wantFolds, n%deltaMax)
		}
		for q := 0; q < 20; q++ {
			rect := randRect(r)
			agg := resolveExact(s, sch, rect, recs)
			count, sums, hist := flatAgg(sch, rect, recs)
			checkAgg(t, "boundary", agg, count, sums, hist)
		}
		// A forced fold (the store merge hook path) must not change
		// answers.
		s.Fold()
		if _, deltaN, _ := s.Stats(); deltaN != 0 {
			t.Fatalf("n=%d: delta not empty after Fold", n)
		}
		for q := 0; q < 10; q++ {
			rect := randRect(r)
			agg := resolveExact(s, sch, rect, recs)
			count, sums, hist := flatAgg(sch, rect, recs)
			checkAgg(t, "post-fold", agg, count, sums, hist)
		}
	}
}

// TestSummaryStoreMergeBoundary is the delta→static merge interaction
// table test: records stream into a store.Sharded and shard-aligned
// summaries, with the store's OnMerge hook folding the matching summary
// shard. At offsets straddling every store merge boundary the aggregate
// read path (per-shard Resolve + exact boundary scan via
// QueryShardAppend — exactly what mind.resolveLocalAgg does) must agree
// with store.Count and a flat oracle.
func TestSummaryStoreMergeBoundary(t *testing.T) {
	sch := testSchema()
	opts := store.Options{Shards: 4, DeltaMergeFrac: 0.25, DeltaMin: 16}
	var sums *Sharded
	var merges []int
	opts.OnMerge = func(shard, staticLen int) {
		sums.Shard(shard).Fold()
		merges = append(merges, shard)
	}
	eng := store.NewSharded(sch, opts)
	sums = NewShardedSummary(sch, eng.NumShards(), Options{Depth: 6, K: 16, DeltaMax: 64})

	r := rand.New(rand.NewSource(7))
	var recs []schema.Record
	check := func(tag string) {
		for q := 0; q < 8; q++ {
			rect := randRect(r)
			agg := NewAgg(sch.Arity(), 16)
			for sh := 0; sh < eng.NumShards(); sh++ {
				part := sums.Shard(sh).Resolve(rect)
				agg.Merge(part.Count, part.Sums, part.Sketch)
				for _, b := range part.Boundary {
					for _, rec := range eng.QueryShardAppend(sh, b, nil) {
						agg.Add(rec)
					}
				}
			}
			count, wsums, hist := flatAgg(sch, rect, recs)
			if uint64(eng.Count(rect)) != count {
				t.Fatalf("%s: store count diverged from oracle", tag)
			}
			checkAgg(t, tag, agg, count, wsums, hist)
		}
	}
	for i := 0; i < 2000; i++ {
		rec := randRec(r)
		eng.Insert(rec)
		sums.Insert(eng.ShardOf(rec), rec)
		recs = append(recs, rec)
		// Check exactly at and next to each merge: the hook appends per
		// merge, so a length change marks a boundary insert.
		if n := len(merges); n > 0 && merges[n-1] >= 0 && i%16 == 15 {
			check("merge-cadence")
		}
	}
	if len(merges) == 0 {
		t.Fatal("no store merges fired; DeltaMin too high for stream")
	}
	check("final")
	eng.Compact() // fires OnMerge → folds summaries
	check("post-compact")
}

// TestSummaryCOWConsistency hammers concurrent inserts and resolves
// under -race: every read must see an internally consistent snapshot.
// The payload attribute is pinned to 1, so Sums[payload] == Count must
// hold in every observed aggregate regardless of timing.
func TestSummaryCOWConsistency(t *testing.T) {
	sch := testSchema()
	s := New(sch, Options{Depth: 6, K: 8, DeltaMax: 32})
	full := sch.FullRect()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				rect := full
				if r.Intn(2) == 0 {
					rect = randRect(r)
				}
				agg := s.Resolve(rect)
				for range agg.Boundary {
					// boundary cells resolve against the store in
					// production; here we only check rollup consistency
				}
				if len(agg.Boundary) == 0 && agg.Sums[3] != agg.Count {
					t.Errorf("inconsistent snapshot: count %d, payload sum %d", agg.Count, agg.Sums[3])
					return
				}
			}
		}(int64(100 + g))
	}
	r := rand.New(rand.NewSource(9))
	const n = 20000
	for i := 0; i < n; i++ {
		rec := randRec(r)
		rec[3] = 1
		s.Insert(rec)
	}
	close(stop)
	wg.Wait()
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	agg := s.Resolve(full)
	if agg.Count != n || agg.Sums[3] != n {
		t.Fatalf("final full resolve: count %d sum %d, want %d", agg.Count, agg.Sums[3], n)
	}
}

func TestVersionedSummaryLifecycle(t *testing.T) {
	sch := testSchema()
	v := NewVersioned(sch, 4, Options{Depth: 4, K: 8, DeltaMax: 16})
	if v.Get(3) != nil {
		t.Fatal("Get created a version")
	}
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		rec := randRec(r)
		v.Version(uint32(i%3)).Insert(i%4, rec)
	}
	if got := v.Versions(); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("Versions = %v", got)
	}
	if v.Len() != 100 {
		t.Fatalf("Len = %d", v.Len())
	}
	v.Drop(1)
	if v.Get(1) != nil || len(v.Versions()) != 2 {
		t.Fatal("Drop did not remove version 1")
	}
	if v.Len() >= 100 {
		t.Fatalf("Len after drop = %d", v.Len())
	}
}

// FuzzSummaryRollup drives record streams from fuzz bytes through the
// cut-tree rollup and compares against a flat recount.
func FuzzSummaryRollup(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(4), uint8(8))
	f.Fuzz(func(t *testing.T, data []byte, depthRaw, deltaRaw uint8) {
		sch := testSchema()
		s := New(sch, Options{Depth: int(depthRaw%10) + 1, K: 8, DeltaMax: int(deltaRaw%16) + 1})
		var recs []schema.Record
		for i := 0; i+3 < len(data); i += 4 {
			rec := schema.Record{
				uint64(data[i]) * 39,
				uint64(data[i+1]) * 39,
				uint64(data[i+2]) * 39,
				uint64(data[i+3]),
			}
			s.Insert(rec)
			recs = append(recs, rec)
		}
		r := rand.New(rand.NewSource(int64(len(data))))
		for q := 0; q < 4; q++ {
			rect := randRect(r)
			agg := resolveExact(s, sch, rect, recs)
			count, sums, hist := flatAgg(sch, rect, recs)
			checkAgg(t, "fuzz", agg, count, sums, hist)
		}
	})
}
