package experiments

import (
	"runtime"
	"sync"
	"time"

	"mind/internal/metrics"
	"mind/internal/schema"
	"mind/internal/store"
)

// StoreLayout measures the store engine's per-layout throughput on one
// machine: bulk load, insert and query rates of the sharded
// static+delta engine against the pointer k-d tree and the linear scan,
// over Index-2-shaped records and the §4.1 selective window queries.
// The headline is query records/sec/core — the per-core read bandwidth
// the cache-oblivious static layout buys, which is what per-core
// sharding multiplies across a machine.
//
// Like ingest-stream this experiment runs on the wall clock, so every
// load-dependent value carries the rt_ prefix the bench-gate comparator
// treats with wide tolerance. The differential oracle_ok value is exact
// and gated: every sampled query must agree with the scan oracle.
func StoreLayout(seed int64, scale float64) (*Report, error) {
	r := newReport("store-layout", "Store engine layouts: bulk load, insert, query records/sec/core (real-time)")

	n := int(400_000 * scale)
	if n < 20_000 {
		n = 20_000
	}
	queries := n / 50
	horizon := uint64(7 * 86400)
	sch := schema.Index2(horizon)
	bounds := sch.Bounds()

	// Deterministic Index-2-shaped records: uniform in every indexed
	// attribute, so selectivity of the window rects below is predictable.
	rnd := xorshift(uint64(seed)*2654435761 + 1)
	mkRec := func() schema.Record {
		rec := make(schema.Record, len(sch.Attrs))
		for i := range rec {
			if i < len(bounds) {
				rec[i] = rnd.next() % (bounds[i] + 1)
			} else {
				rec[i] = rnd.next()
			}
		}
		return rec
	}
	recs := make([]schema.Record, n)
	for i := range recs {
		recs[i] = mkRec()
	}

	// Selective window rects (~1% per dimension), the §4.1 monitoring
	// query shape: cost is traversal, not result materialization.
	rects := make([]schema.Rect, 256)
	for i := range rects {
		rc := schema.Rect{Lo: make([]uint64, len(bounds)), Hi: make([]uint64, len(bounds))}
		for d := range bounds {
			w := bounds[d]/100 + 1
			lo := rnd.next() % (bounds[d] - w + 1)
			rc.Lo[d], rc.Hi[d] = lo, lo+w
		}
		rects[i] = rc
	}

	cores := runtime.GOMAXPROCS(0)

	// Build each layout, timing the population path that layout uses in
	// production: streamed inserts for kd and sharded (the engine merges
	// as it goes), one bulk load for static.
	sc := store.NewScan(sch)
	for _, rec := range recs {
		sc.Insert(rec)
	}

	kd := store.NewKD(sch)
	kdStart := time.Now()
	for _, rec := range recs {
		kd.Insert(rec)
	}
	kdInsert := time.Since(kdStart)

	shardOpts := store.Options{Shards: cores}
	sh := store.NewSharded(sch, shardOpts)
	shStart := time.Now()
	for _, rec := range recs {
		sh.Insert(rec)
	}
	shInsert := time.Since(shStart)

	blStart := time.Now()
	static := store.NewStatic(sch, append([]schema.Record(nil), recs...))
	bulkLoad := time.Since(blStart)
	sh.Compact() // steady-state layout: everything in the static arrays

	// Differential gate before timing: the layouts must agree with the
	// oracle on every sampled rect.
	oracleOK := 1.0
	for _, rc := range rects[:32] {
		want := sc.Count(rc)
		if kd.Count(rc) != want || sh.Count(rc) != want || static.Count(rc) != want {
			oracleOK = 0
		}
	}

	// Query throughput: GOMAXPROCS readers splitting a fixed query
	// budget, reporting aggregate queries/sec and result records/sec,
	// normalized per core.
	type queryable interface {
		Query(schema.Rect) []schema.Record
	}
	run := func(st queryable) (qps, rps float64) {
		var wg sync.WaitGroup
		var recsOut int64
		var mu sync.Mutex
		per := queries / cores
		if per < 1 {
			per = 1
		}
		start := time.Now()
		for w := 0; w < cores; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				local := 0
				for q := 0; q < per; q++ {
					local += len(st.Query(rects[(w*per+q)%len(rects)]))
				}
				mu.Lock()
				recsOut += int64(local)
				mu.Unlock()
			}(w)
		}
		wg.Wait()
		el := time.Since(start).Seconds()
		total := float64(per * cores)
		return total / el / float64(cores), float64(recsOut) / el / float64(cores)
	}

	shQPS, shRPS := run(sh)
	kdQPS, kdRPS := run(kd)
	stQPS, _ := run(static)
	scQPS, _ := run(sc)

	t := metrics.NewTable("layout", "populate(s)", "queries/s/core", "result recs/s/core")
	t.Row("scan", "-", int(scQPS), "-")
	t.Row("kd-pointer", kdInsert.Seconds(), int(kdQPS), int(kdRPS))
	t.Row("static-veb", bulkLoad.Seconds(), int(stQPS), "-")
	t.Row("sharded-hybrid", shInsert.Seconds(), int(shQPS), int(shRPS))
	r.table(t)

	r.Values["oracle_ok"] = oracleOK
	r.Values["store_shards"] = float64(sh.NumShards())
	r.Values["static_frac"] = sh.StaticFrac()
	r.Values["rt_sharded_query_per_sec_core"] = shQPS
	r.Values["rt_sharded_result_recs_per_sec_core"] = shRPS
	r.Values["rt_kd_query_per_sec_core"] = kdQPS
	r.Values["rt_kd_result_recs_per_sec_core"] = kdRPS
	r.Values["rt_static_query_per_sec_core"] = stQPS
	r.Values["rt_scan_query_per_sec_core"] = scQPS
	r.Values["rt_bulkload_recs_per_sec"] = float64(n) / bulkLoad.Seconds()
	r.Values["rt_sharded_insert_per_sec"] = float64(n) / shInsert.Seconds()
	r.Values["rt_kd_insert_per_sec"] = float64(n) / kdInsert.Seconds()
	r.Values["rt_static_query_speedup_vs_kd"] = stQPS / kdQPS
	r.Values["rt_sharded_query_speedup_vs_kd"] = shQPS / kdQPS

	r.notef("n=%d records, %d queries over %d cores, %d shards; static/kd query speedup %.2fx, sharded/kd %.2fx",
		n, queries, cores, sh.NumShards(), stQPS/kdQPS, shQPS/kdQPS)
	if oracleOK != 1 {
		r.notef("DIFFERENTIAL FAILURE: a layout disagreed with the scan oracle")
	}
	return r, nil
}
