package wire

import (
	"mind/internal/bitstr"
	"mind/internal/schema"
)

// Aggregate path (DESIGN.md §4i): COUNT/SUM/top-k over a rectangle
// answered from the per-node summary layer instead of materializing
// records. AggQuery plays both roles the record path splits between
// Query and SubQuery — the initial message routed toward the smallest
// region containing the rect, and the decomposed per-region pieces —
// because an aggregate answer carries no record payload, so there is
// nothing to gain from a distinct whole-query envelope.

// AggQuery asks the owner of RegionCode for the aggregate of Rect
// restricted to that region. A receiver whose code is a prefix of
// RegionCode answers the whole region; one whose code extends it
// re-decomposes against the originator's tree; otherwise it forwards.
type AggQuery struct {
	ReqID      uint64
	OriginAddr string
	Index      string
	Versions   []uint64
	Rect       schema.Rect
	RegionCode bitstr.Code
	// TopK caps the heavy-hitter entries in each answer (<= the summary
	// sketch capacity; 0 means the node's configured capacity).
	TopK uint32
	Hops uint8
	// Historic marks a piece forwarded along a §3.4 history pointer;
	// answered from local storage, skipping ownership checks.
	Historic bool
	// Attempt counts originator re-issues for a still-missing region.
	Attempt uint8
	// TreeEpoch identifies the cut tree the originator decomposed with.
	// Aggregate answers ARE geometry-dependent (the answering node
	// restricts to its region's cell rect), so unlike the record path
	// the answer side also re-checks epoch agreement.
	TreeEpoch uint64
}

func (m *AggQuery) Kind() Kind { return KindAggQuery }
func (m *AggQuery) encode(w *Writer) {
	w.Uvarint(m.ReqID)
	w.String(m.OriginAddr)
	w.String(m.Index)
	w.U64Slice(m.Versions)
	encodeRect(w, m.Rect)
	w.Code(m.RegionCode)
	w.Uvarint(uint64(m.TopK))
	w.U8(m.Hops)
	w.Bool(m.Historic)
	w.U8(m.Attempt)
	w.Uvarint(m.TreeEpoch)
}
func (m *AggQuery) decode(r *Reader) {
	m.ReqID = r.Uvarint()
	m.OriginAddr = r.String()
	m.Index = r.String()
	m.Versions = r.U64Slice()
	m.Rect = decodeRect(r)
	m.RegionCode = r.Code()
	m.TopK = uint32(r.Uvarint())
	m.Hops = r.U8()
	m.Historic = r.Bool()
	m.Attempt = r.U8()
	m.TreeEpoch = r.Uvarint()
}

// AggResp carries one region's partial aggregate back to the
// originator: exact count and per-attribute sums (wrapping mod 2^64)
// over Rect ∩ the answered region, plus the region's heavy-hitter
// sketch flattened to parallel slices. Cover/HasCover work exactly as
// in QueryResp — the originator tiles Cover codes until the query
// region is complete, and a history-delegating node contributes with
// HasCover false.
type AggResp struct {
	ReqID    uint64
	From     NodeInfo
	HasCover bool
	Cover    bitstr.Code
	Versions []uint64
	Hops     uint8

	Count uint64
	Sums  []uint64

	// Flattened summary.Sketch: parallel Keys/Counts/Errs in canonical
	// order, total offered weight and the absent-key floor. Floor == 0
	// means the partial's top-k is exact.
	SketchK uint32
	SketchN uint64
	Floor   uint64
	Keys    []uint64
	Counts  []uint64
	Errs    []uint64
}

func (m *AggResp) Kind() Kind { return KindAggResp }
func (m *AggResp) encode(w *Writer) {
	w.Uvarint(m.ReqID)
	m.From.encode(w)
	w.Bool(m.HasCover)
	w.Code(m.Cover)
	w.U64Slice(m.Versions)
	w.U8(m.Hops)
	w.U64(m.Count)
	w.U64Slice(m.Sums)
	w.Uvarint(uint64(m.SketchK))
	w.U64(m.SketchN)
	w.U64(m.Floor)
	w.U64Slice(m.Keys)
	w.U64Slice(m.Counts)
	w.U64Slice(m.Errs)
}
func (m *AggResp) decode(r *Reader) {
	m.ReqID = r.Uvarint()
	m.From.decode(r)
	m.HasCover = r.Bool()
	m.Cover = r.Code()
	m.Versions = r.U64Slice()
	m.Hops = r.U8()
	m.Count = r.U64()
	m.Sums = r.U64Slice()
	m.SketchK = uint32(r.Uvarint())
	m.SketchN = r.U64()
	m.Floor = r.U64()
	m.Keys = r.U64Slice()
	m.Counts = r.U64Slice()
	m.Errs = r.U64Slice()
	if len(m.Counts) != len(m.Keys) || len(m.Errs) != len(m.Keys) {
		r.fail("sketch slices disagree: %d keys, %d counts, %d errs",
			len(m.Keys), len(m.Counts), len(m.Errs))
	}
}

// ClientAgg asks the receiving node to resolve an aggregate query on
// the client's behalf (mindctl agg).
type ClientAgg struct {
	ReqID uint64
	Index string
	Rect  schema.Rect
	TopK  uint32
}

func (m *ClientAgg) Kind() Kind { return KindClientAgg }
func (m *ClientAgg) encode(w *Writer) {
	w.Uvarint(m.ReqID)
	w.String(m.Index)
	encodeRect(w, m.Rect)
	w.Uvarint(uint64(m.TopK))
}
func (m *ClientAgg) decode(r *Reader) {
	m.ReqID = r.Uvarint()
	m.Index = r.String()
	m.Rect = decodeRect(r)
	m.TopK = uint32(r.Uvarint())
}

// ClientAggResp answers ClientAgg with the merged aggregate.
type ClientAggResp struct {
	ReqID      uint64
	Complete   bool
	Responders uint32
	// Shed reports overload refusal, as in ClientAck.
	Shed bool

	Count uint64
	Sums  []uint64
	// Exact reports that the heavy-hitter entries are exact counts, not
	// estimates (no sketch anywhere evicted or truncated).
	Exact   bool
	SketchN uint64
	Floor   uint64
	Keys    []uint64
	Counts  []uint64
	Errs    []uint64
}

func (m *ClientAggResp) Kind() Kind { return KindClientAggResp }
func (m *ClientAggResp) encode(w *Writer) {
	w.Uvarint(m.ReqID)
	w.Bool(m.Complete)
	w.Bool(m.Shed)
	w.Bool(m.Exact)
	w.Uvarint(uint64(m.Responders))
	w.U64(m.Count)
	w.U64Slice(m.Sums)
	w.U64(m.SketchN)
	w.U64(m.Floor)
	w.U64Slice(m.Keys)
	w.U64Slice(m.Counts)
	w.U64Slice(m.Errs)
}
func (m *ClientAggResp) decode(r *Reader) {
	m.ReqID = r.Uvarint()
	m.Complete = r.Bool()
	m.Shed = r.Bool()
	m.Exact = r.Bool()
	m.Responders = uint32(r.Uvarint())
	m.Count = r.U64()
	m.Sums = r.U64Slice()
	m.SketchN = r.U64()
	m.Floor = r.U64()
	m.Keys = r.U64Slice()
	m.Counts = r.U64Slice()
	m.Errs = r.U64Slice()
	if len(m.Counts) != len(m.Keys) || len(m.Errs) != len(m.Keys) {
		r.fail("sketch slices disagree: %d keys, %d counts, %d errs",
			len(m.Keys), len(m.Counts), len(m.Errs))
	}
}
