// Automated drill-down (§5, §7): "a network operator would arrive at
// this by programmatically querying progressively smaller traffic
// volumes". This example starts from one coarse suspicion — "something
// moved a suspicious volume in the last window" — and lets the
// drilldown package bisect the attribute space over live MIND queries
// until the injected anomalies are isolated into minimal regions, each
// with the exact monitors that observed it.
//
//	go run ./examples/drilldown
package main

import (
	"fmt"
	"log"
	"time"

	"mind/internal/aggregate"
	"mind/internal/cluster"
	"mind/internal/drilldown"
	"mind/internal/flowgen"
	"mind/internal/mind"
	"mind/internal/schema"
	"mind/internal/topo"
	"mind/internal/transport/simnet"
)

func main() {
	routers := topo.AbileneRouters()
	c, err := cluster.New(cluster.Options{
		Routers: routers,
		Seed:    29,
		Sim: simnet.Config{
			Seed:    29,
			Latency: topo.LatencyFunc(routers, topo.Addr, 10*time.Millisecond),
		},
		Node: mind.DefaultConfig(29),
	})
	if err != nil {
		log.Fatal(err)
	}
	idx2 := schema.Index2(86400)
	if err := c.CreateIndex(idx2); err != nil {
		log.Fatal(err)
	}

	// Two alpha flows to different customers, hidden in 10 minutes of
	// background traffic.
	gcfg := flowgen.DefaultConfig(29)
	gcfg.Routers = routers
	gcfg.BaseFlowsPerSec = 15
	g := flowgen.New(gcfg)
	g.Inject(flowgen.Anomaly{
		Kind: flowgen.AlphaFlow, Start: 120, Duration: 120,
		SrcPrefix: flowgen.SrcPrefix(77), DstPrefix: flowgen.DstPrefix(31),
		DstPort: 443, Routers: []int{2, 5, 9}, Intensity: 70_000_000,
	})
	g.Inject(flowgen.Anomaly{
		Kind: flowgen.AlphaFlow, Start: 300, Duration: 100,
		SrcPrefix: flowgen.SrcPrefix(1234), DstPrefix: flowgen.DstPrefix(2222),
		DstPort: 80, Routers: []int{0, 7}, Intensity: 55_000_000,
	})

	inserted := 0
	w := aggregate.NewWindower(aggregate.Config{WindowSec: 30}, func(ws uint64, aggs []*aggregate.Agg) {
		for _, a := range aggs {
			if rec, ok := aggregate.Index2Record(ws, a); ok {
				if res, _, _ := c.InsertWait(a.Key.Node, idx2.Tag, rec); res.OK {
					inserted++
				}
			}
		}
	})
	g.Generate(0, 600, func(f flowgen.Flow) { w.Add(f) })
	w.Flush()
	fmt.Printf("indexed %d records from %d monitors\n\n", inserted, len(routers))

	// The coarse suspicion: any aggregate over 4 MB, anywhere, in the
	// whole period (the §5 alpha-flow template). The drill-down will
	// narrow the destination and volume dimensions; the timestamp is
	// frozen (already the window of interest).
	floor := uint64(4_000_000)
	if floor > schema.OctetsBound {
		floor = schema.OctetsBound
	}
	start := schema.Rect{
		Lo: []uint64{0, 0, floor},
		Hi: []uint64{0xffffffff, 600, schema.OctetsBound},
	}
	queries := 0
	qf := func(rect schema.Rect) ([]schema.Record, bool, error) {
		queries++
		res, _, err := c.QueryWait(3, idx2.Tag, rect)
		return res.Records, res.Complete, err
	}
	res, err := drilldown.Hunt(qf, start, drilldown.Config{
		SmallEnough: 6,
		MaxQueries:  140,
		FrozenDims:  []int{1, 2}, // timestamp and the volume floor stay put
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("drill-down issued %d queries and isolated %d region(s):\n\n", res.Queries, len(res.Findings))
	for i, f := range res.Findings {
		fmt.Printf("finding %d: destinations %s – %s\n", i+1,
			schema.FormatIPv4(f.Rect.Lo[0]), schema.FormatIPv4(f.Rect.Hi[0]))
		seen := map[string]bool{}
		for _, rec := range f.Records {
			key := fmt.Sprintf("  %s → %s (%d bytes/window)",
				schema.FormatIPv4(rec[3]), schema.FormatIPv4(rec[0]), rec[2])
			if !seen[key] {
				seen[key] = true
				fmt.Println(key)
			}
		}
		var names []string
		for _, id := range drilldown.MonitorSet([]drilldown.Finding{f}, 4) {
			if int(id) < len(routers) {
				names = append(names, routers[id].Name)
			}
		}
		fmt.Printf("  observed at: %v\n\n", names)
	}
	if res.Truncated {
		fmt.Println("(query budget exhausted before full refinement)")
	}
}
