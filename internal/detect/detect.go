// Package detect is an off-line, centralized anomaly detector over raw
// flow streams. It plays the role of Lakhina et al.'s trace analysis in
// §5: an independently implemented detector whose findings define the
// ground truth that MIND queries are checked against for recall.
//
// The detector aggregates the entire trace centrally over 5-minute
// windows and flags (i) volume anomalies — prefix pairs moving more
// bytes than a threshold (alpha flows), and (ii) fanout anomalies —
// prefix pairs with more short connection attempts than a threshold
// (DoS floods and port scans).
package detect

import (
	"fmt"
	"sort"

	"mind/internal/flowgen"
	"mind/internal/schema"
)

// Kind classifies a detected event.
type Kind uint8

const (
	// Volume marks an alpha-flow-like event (octets above threshold).
	Volume Kind = iota
	// Fanout marks a DoS/scan-like event (short connections above
	// threshold).
	Fanout
)

func (k Kind) String() string {
	if k == Volume {
		return "volume"
	}
	return "fanout"
}

// Event is one detected anomaly instance (one prefix pair in one
// window).
type Event struct {
	Kind        Kind
	WindowStart uint64
	SrcPrefix   uint64
	DstPrefix   uint64
	Octets      uint64
	Fanout      uint64
	// Nodes are the monitors that observed the event — the same
	// correlation a MIND query response yields (§5's DoS path example).
	Nodes []int
}

func (e Event) String() string {
	return fmt.Sprintf("%s@%d %s→%s oct=%d fan=%d nodes=%v",
		e.Kind, e.WindowStart,
		schema.FormatIPv4(e.SrcPrefix), schema.FormatIPv4(e.DstPrefix),
		e.Octets, e.Fanout, e.Nodes)
}

// Config tunes the detector thresholds; both default to the §5 query
// constants.
type Config struct {
	WindowSec       uint64 // default 300 (the paper's 5-minute windows)
	VolumeThreshold uint64 // default 4,000,000 octets
	FanoutThreshold uint64 // default 1500 short connections
}

func (c Config) withDefaults() Config {
	if c.WindowSec == 0 {
		c.WindowSec = 300
	}
	if c.VolumeThreshold == 0 {
		c.VolumeThreshold = 4_000_000
	}
	if c.FanoutThreshold == 0 {
		c.FanoutThreshold = 1500
	}
	return c
}

type pairKey struct {
	src, dst uint64
}

type pairAgg struct {
	octets uint64
	nodes  map[int]bool
	// shorts counts short connection attempts per observing node; the
	// per-node maximum is the pair's fanout (the same flow observed at
	// several path monitors is one attempt).
	shorts map[int]uint64
}

// Detector consumes a timestamp-ordered flow stream.
type Detector struct {
	cfg      Config
	winStart uint64
	started  bool
	pairs    map[pairKey]*pairAgg
	events   []Event
}

// New creates a detector.
func New(cfg Config) *Detector {
	return &Detector{cfg: cfg.withDefaults(), pairs: make(map[pairKey]*pairAgg)}
}

// Add ingests one flow.
func (d *Detector) Add(f flowgen.Flow) {
	ws := f.Start - f.Start%d.cfg.WindowSec
	if !d.started {
		d.winStart, d.started = ws, true
	}
	for ws > d.winStart {
		d.flush()
		d.winStart += d.cfg.WindowSec
	}
	k := pairKey{src: schema.Prefix24(f.SrcIP), dst: schema.Prefix24(f.DstIP)}
	a, ok := d.pairs[k]
	if !ok {
		a = &pairAgg{nodes: make(map[int]bool), shorts: make(map[int]uint64)}
		d.pairs[k] = a
	}
	// Count per-monitor observations once each toward the node set, but
	// avoid double counting octets across monitors on the same path: a
	// flow seen at k monitors is one flow. We attribute volume once per
	// (flow identity); in the synthetic setting the same flow instance
	// appears at multiple nodes with identical fields, so divide by
	// occurrence instead: simplest robust rule is to take the max
	// per-node volume. Track per-node octets and report the max later.
	a.nodes[f.Node] = true
	a.octets += f.Octets
	if f.Octets <= 400 {
		a.shorts[f.Node]++
	}
}

// Finish flushes the last window and returns all events, ordered by
// window then prefix pair.
func (d *Detector) Finish() []Event {
	if d.started {
		d.flush()
		d.started = false
	}
	sort.Slice(d.events, func(i, j int) bool {
		a, b := d.events[i], d.events[j]
		if a.WindowStart != b.WindowStart {
			return a.WindowStart < b.WindowStart
		}
		if a.DstPrefix != b.DstPrefix {
			return a.DstPrefix < b.DstPrefix
		}
		return a.SrcPrefix < b.SrcPrefix
	})
	return d.events
}

func (d *Detector) flush() {
	for k, a := range d.pairs {
		nodes := make([]int, 0, len(a.nodes))
		for n := range a.nodes {
			nodes = append(nodes, n)
		}
		sort.Ints(nodes)
		// Volume was summed across monitors on the path; normalize to a
		// per-monitor average so multi-hop visibility doesn't inflate it.
		oct := a.octets
		if len(nodes) > 1 {
			oct /= uint64(len(nodes))
		}
		if oct >= d.cfg.VolumeThreshold {
			d.events = append(d.events, Event{
				Kind: Volume, WindowStart: d.winStart,
				SrcPrefix: k.src, DstPrefix: k.dst,
				Octets: oct, Nodes: nodes,
			})
		}
		var fanout uint64
		for _, c := range a.shorts {
			if c > fanout {
				fanout = c
			}
		}
		if fanout >= d.cfg.FanoutThreshold {
			d.events = append(d.events, Event{
				Kind: Fanout, WindowStart: d.winStart,
				SrcPrefix: k.src, DstPrefix: k.dst,
				Octets: oct, Fanout: fanout, Nodes: nodes,
			})
		}
	}
	d.pairs = make(map[pairKey]*pairAgg)
}

// MatchesAnomaly reports whether an event corresponds to a ground-truth
// injected anomaly (same prefix pair, overlapping window).
func (e Event) MatchesAnomaly(a flowgen.Anomaly, windowSec uint64) bool {
	if e.SrcPrefix != a.SrcPrefix || e.DstPrefix != a.DstPrefix {
		return false
	}
	winEnd := e.WindowStart + windowSec
	return a.Start < winEnd && a.Start+a.Duration > e.WindowStart
}

// Recall computes the fraction of injected anomalies matched by at least
// one detected event.
func Recall(events []Event, truth []flowgen.Anomaly, windowSec uint64) float64 {
	if len(truth) == 0 {
		return 1
	}
	hit := 0
	for _, a := range truth {
		for _, e := range events {
			if e.MatchesAnomaly(a, windowSec) {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(len(truth))
}
