// Package histogram implements the approximate multi-dimensional
// histograms MIND uses to drive its load balancing (§3.7) and the
// mismatch metric of Appendix A used to quantify the day-to-day
// stationarity of traffic distributions (§2.2, Fig 3).
//
// A Hist partitions a d-dimensional data space, bounded per dimension,
// into k equal-width bins per dimension (k^d cells in total; k is the
// paper's "histogram granularity"). Cell counts are float64 so that
// merged and scaled histograms remain exact enough for median cuts.
package histogram

import (
	"fmt"
	"math"
)

// MaxCells bounds the dense cell array; a histogram over many dimensions
// must use a coarse granularity (Fig 3's six-attribute histograms use
// k = 2..4).
const MaxCells = 1 << 24

// Hist is a d-dimensional equi-width histogram.
type Hist struct {
	k      int       // bins per dimension
	bounds []uint64  // inclusive upper bound per dimension
	width  []uint64  // bin width per dimension (width*k > bound)
	counts []float64 // k^d cells, row-major with dimension 0 slowest
	total  float64
}

// New creates an empty histogram with k bins per dimension over the space
// [0, bounds[i]] in each dimension i.
func New(k int, bounds []uint64) (*Hist, error) {
	if k < 1 {
		return nil, fmt.Errorf("histogram: granularity %d < 1", k)
	}
	d := len(bounds)
	if d == 0 {
		return nil, fmt.Errorf("histogram: zero dimensions")
	}
	cells := 1
	for i := 0; i < d; i++ {
		if cells > MaxCells/k {
			return nil, fmt.Errorf("histogram: %d^%d cells exceeds limit %d", k, d, MaxCells)
		}
		cells *= k
	}
	h := &Hist{
		k:      k,
		bounds: append([]uint64(nil), bounds...),
		width:  make([]uint64, d),
		counts: make([]float64, cells),
	}
	for i, b := range bounds {
		// width is the smallest w with k*w > bound, so every value in
		// [0, bound] maps to a bin in [0, k).
		h.width[i] = b/uint64(k) + 1
	}
	return h, nil
}

// MustNew is New that panics on error.
func MustNew(k int, bounds []uint64) *Hist {
	h, err := New(k, bounds)
	if err != nil {
		panic(err)
	}
	return h
}

// K returns the per-dimension granularity.
func (h *Hist) K() int { return h.k }

// Dims returns the dimensionality.
func (h *Hist) Dims() int { return len(h.bounds) }

// Bounds returns the per-dimension inclusive upper bounds.
func (h *Hist) Bounds() []uint64 { return append([]uint64(nil), h.bounds...) }

// Cells returns the total number of cells.
func (h *Hist) Cells() int { return len(h.counts) }

// Total returns the total weight added.
func (h *Hist) Total() float64 { return h.total }

// bin maps a coordinate to its bin index along dimension dim, clamping
// out-of-bound values into the topmost bin.
func (h *Hist) bin(dim int, v uint64) int {
	if v > h.bounds[dim] {
		v = h.bounds[dim]
	}
	b := int(v / h.width[dim])
	if b >= h.k {
		b = h.k - 1
	}
	return b
}

// cellIndex flattens per-dimension bin coordinates.
func (h *Hist) cellIndex(bins []int) int {
	idx := 0
	for _, b := range bins {
		idx = idx*h.k + b
	}
	return idx
}

// Add accumulates weight w at point p (clamped into bounds).
func (h *Hist) Add(p []uint64, w float64) {
	if len(p) != len(h.bounds) {
		panic(fmt.Sprintf("histogram: point dims %d != %d", len(p), len(h.bounds)))
	}
	idx := 0
	for i, v := range p {
		idx = idx*h.k + h.bin(i, v)
	}
	h.counts[idx] += w
	h.total += w
}

// AddPoint accumulates unit weight at p.
func (h *Hist) AddPoint(p []uint64) { h.Add(p, 1) }

// SameShape reports whether two histograms have identical granularity and
// bounds and can be merged or compared.
func (h *Hist) SameShape(o *Hist) bool {
	if h.k != o.k || len(h.bounds) != len(o.bounds) {
		return false
	}
	for i := range h.bounds {
		if h.bounds[i] != o.bounds[i] {
			return false
		}
	}
	return true
}

// Merge adds o's cells into h. The histograms must have the same shape.
// MIND's designated node merges the per-node histograms this way when it
// collects the daily distribution (§3.7).
func (h *Hist) Merge(o *Hist) error {
	if !h.SameShape(o) {
		return fmt.Errorf("histogram: shape mismatch (k=%d/%d, d=%d/%d)", h.k, o.k, len(h.bounds), len(o.bounds))
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	return nil
}

// Clone deep-copies the histogram.
func (h *Hist) Clone() *Hist {
	c := &Hist{
		k:      h.k,
		bounds: append([]uint64(nil), h.bounds...),
		width:  append([]uint64(nil), h.width...),
		counts: append([]float64(nil), h.counts...),
		total:  h.total,
	}
	return c
}

// Reset zeroes all cells.
func (h *Hist) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
}

// Count returns the weight in the cell addressed by per-dimension bins.
func (h *Hist) Count(bins []int) float64 {
	if len(bins) != len(h.bounds) {
		panic("histogram: wrong bin coordinate arity")
	}
	for i, b := range bins {
		if b < 0 || b >= h.k {
			panic(fmt.Sprintf("histogram: bin %d out of range on dim %d", b, i))
		}
	}
	return h.counts[h.cellIndex(bins)]
}

// CellCounts exposes the raw flattened cell array (read-only use).
func (h *Hist) CellCounts() []float64 { return h.counts }

// Mismatch computes the Appendix A metric between two same-shaped
// histograms, normalized to a fraction of the data:
//
//	MF = Σ_x |I_i(x) − I_j(x)| / (total_i + total_j)
//
// For equal totals N this equals the paper's Σ|…|/2 expressed as a
// fraction of N: 0 means identical distributions, 1 means completely
// disjoint. It upper-bounds the fraction of data that must move to
// re-balance day j onto day i's allocation.
func (h *Hist) Mismatch(o *Hist) (float64, error) {
	if !h.SameShape(o) {
		return 0, fmt.Errorf("histogram: shape mismatch")
	}
	denom := h.total + o.total
	if denom == 0 {
		return 0, nil
	}
	var sum float64
	for i := range h.counts {
		sum += math.Abs(h.counts[i] - o.counts[i])
	}
	return sum / denom, nil
}

// overlap returns the fraction of bin b (along dim) covered by the value
// interval [lo, hi], both inclusive, assuming a uniform intra-bin
// distribution.
func (h *Hist) overlap(dim, b int, lo, hi uint64) float64 {
	w := h.width[dim]
	bLo := uint64(b) * w
	// Inclusive upper edge of the bin, clamped to the dimension bound so
	// the topmost bin absorbs clamped values.
	bHi := bLo + w - 1
	if b == h.k-1 && h.bounds[dim] > bHi {
		bHi = h.bounds[dim]
	}
	if hi < bLo || lo > bHi {
		return 0
	}
	cLo, cHi := lo, hi
	if cLo < bLo {
		cLo = bLo
	}
	if cHi > bHi {
		cHi = bHi
	}
	return float64(cHi-cLo+1) / float64(bHi-bLo+1)
}

// CountRange estimates the weight inside the hyper-rectangle given by
// inclusive per-dimension intervals [lo[i], hi[i]], pro-rating straddled
// bins uniformly.
func (h *Hist) CountRange(lo, hi []uint64) float64 {
	if len(lo) != len(h.bounds) || len(hi) != len(h.bounds) {
		panic("histogram: wrong range arity")
	}
	d := len(h.bounds)
	// Per-dimension list of (bin, fraction) with nonzero overlap.
	type binFrac struct {
		bin  int
		frac float64
	}
	perDim := make([][]binFrac, d)
	for i := 0; i < d; i++ {
		bLo, bHi := h.bin(i, lo[i]), h.bin(i, hi[i])
		for b := bLo; b <= bHi; b++ {
			if f := h.overlap(i, b, lo[i], hi[i]); f > 0 {
				perDim[i] = append(perDim[i], binFrac{b, f})
			}
		}
		if len(perDim[i]) == 0 {
			return 0
		}
	}
	// Enumerate the cross product of overlapping bins.
	var sum float64
	idx := make([]int, d)
	for {
		cell := 0
		frac := 1.0
		for i := 0; i < d; i++ {
			bf := perDim[i][idx[i]]
			cell = cell*h.k + bf.bin
			frac *= bf.frac
		}
		sum += h.counts[cell] * frac
		// Advance the odometer.
		i := d - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(perDim[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return sum
		}
	}
}

// SplitValue finds a coordinate v along dimension dim that divides the
// weight of the hyper-rectangle [lo, hi] as evenly as possible: the
// estimated weight of the half with x_dim <= v is as close as possible to
// half the rectangle's weight. This is the balanced-cut primitive of
// §3.7. The returned v always satisfies lo[dim] <= v < hi[dim] so both
// halves are non-empty; ok is false when the rectangle is degenerate
// (single coordinate along dim) or carries no weight, in which case the
// caller should fall back to a midpoint cut.
func (h *Hist) SplitValue(lo, hi []uint64, dim int) (v uint64, ok bool) {
	if lo[dim] >= hi[dim] {
		return lo[dim], false
	}
	total := h.CountRange(lo, hi)
	if total <= 0 {
		return 0, false
	}
	half := total / 2

	// Walk bins along dim, accumulating slab weights.
	sLo := append([]uint64(nil), lo...)
	sHi := append([]uint64(nil), hi...)
	bLo, bHi := h.bin(dim, lo[dim]), h.bin(dim, hi[dim])
	var cum float64
	for b := bLo; b <= bHi; b++ {
		// Slab = rect restricted to bin b along dim (clipped to rect).
		w := h.width[dim]
		slabLo := uint64(b) * w
		slabHi := slabLo + w - 1
		if b == h.k-1 {
			slabHi = h.bounds[dim]
		}
		if slabLo < lo[dim] {
			slabLo = lo[dim]
		}
		if slabHi > hi[dim] {
			slabHi = hi[dim]
		}
		sLo[dim], sHi[dim] = slabLo, slabHi
		sw := h.CountRange(sLo, sHi)
		if cum+sw >= half && sw > 0 {
			// Interpolate within the slab assuming uniform density.
			need := half - cum
			span := float64(slabHi - slabLo)
			off := uint64(math.Round(span * (need / sw)))
			v := slabLo + off
			if v >= hi[dim] {
				v = hi[dim] - 1
			}
			if v < lo[dim] {
				v = lo[dim]
			}
			return v, true
		}
		cum += sw
	}
	// All weight at/near the top; cut just below the top coordinate.
	return hi[dim] - 1, true
}

// HeaviestCell returns the per-dimension bin coordinates and weight of the
// heaviest cell; useful for diagnostics and skew reporting (Fig 2).
func (h *Hist) HeaviestCell() ([]int, float64) {
	best, bi := -1.0, 0
	for i, c := range h.counts {
		if c > best {
			best, bi = c, i
		}
	}
	d := len(h.bounds)
	bins := make([]int, d)
	for i := d - 1; i >= 0; i-- {
		bins[i] = bi % h.k
		bi /= h.k
	}
	return bins, best
}
