// Package summary maintains the per-node hierarchical aggregate layer:
// per-prefix counters (record counts and per-attribute sums) rolled up a
// fixed binary cut of the indexed data space, plus a bounded
// heavy-hitter sketch per tree node, snapshotted copy-on-write like the
// record store so reads are lock-free. It is the Flowyager-style
// summary MIND answers COUNT/SUM/top-k whale queries from in O(cover)
// instead of touching every record (DESIGN.md §4i).
package summary

import "sort"

// Sketch is a deterministic space-saving heavy-hitter sketch with a
// fixed capacity of K monitored keys. Estimates are overestimates that
// carry their own error: for a monitored key,
//
//	Count - Err <= true weight <= Count
//
// and any key NOT monitored has true weight <= Floor. Floor == 0 means
// the sketch is exact: nothing was ever evicted or truncated anywhere
// in its offer/merge history, so every Count is the true weight.
//
// Determinism: eviction picks the minimum-count entry with ties broken
// toward the smallest key, and Merge canonicalizes (count descending,
// key ascending) before truncating, so a sketch's state is a pure
// function of the multiset of offered streams — the property the
// simnet reproducibility contract and the merge-commutativity tests
// rest on.
type Sketch struct {
	k       int
	n       uint64 // total offered weight
	floor   uint64 // upper bound on the true weight of any absent key
	entries []Entry
	idx     map[uint64]int
}

// Entry is one monitored key with its bracketed estimate.
type Entry struct {
	Key   uint64
	Count uint64 // overestimate of the true weight
	Err   uint64 // Count - Err is a valid underestimate
}

// NewSketch creates an empty sketch monitoring at most k keys.
func NewSketch(k int) *Sketch {
	if k < 1 {
		k = 1
	}
	return &Sketch{k: k, idx: make(map[uint64]int, k)}
}

// FromParts reassembles a sketch from its wire representation. Keys in
// entries must be distinct; the slice is retained.
func FromParts(k int, n, floor uint64, entries []Entry) *Sketch {
	if k < len(entries) {
		k = len(entries)
	}
	s := &Sketch{k: k, n: n, floor: floor, entries: entries}
	s.idx = make(map[uint64]int, len(entries))
	for i, e := range entries {
		s.idx[e.Key] = i
	}
	if s.k < 1 {
		s.k = 1
	}
	return s
}

// K returns the sketch capacity.
func (s *Sketch) K() int { return s.k }

// N returns the total offered weight (across all merged streams).
func (s *Sketch) N() uint64 { return s.n }

// Floor returns the absent-key bound: any key not monitored has true
// weight <= Floor.
func (s *Sketch) Floor() uint64 { return s.floor }

// Exact reports whether every monitored count is the true weight (no
// eviction or truncation ever discarded mass).
func (s *Sketch) Exact() bool { return s.floor == 0 }

// Len returns the number of monitored keys.
func (s *Sketch) Len() int { return len(s.entries) }

// Offer records one occurrence of key.
func (s *Sketch) Offer(key uint64) { s.OfferN(key, 1) }

// OfferN records w occurrences of key — the space-saving step: a new
// key evicts the minimum entry and inherits its estimate as error.
func (s *Sketch) OfferN(key, w uint64) {
	if w == 0 {
		return
	}
	s.n += w
	if i, ok := s.idx[key]; ok {
		s.entries[i].Count += w
		return
	}
	if len(s.entries) < s.k {
		// The key may have carried up to Floor weight while absent
		// (post-merge-truncation sketches have Floor > 0 below capacity).
		s.idx[key] = len(s.entries)
		s.entries = append(s.entries, Entry{Key: key, Count: s.floor + w, Err: s.floor})
		return
	}
	mi := 0
	for i := 1; i < len(s.entries); i++ {
		e, m := &s.entries[i], &s.entries[mi]
		if e.Count < m.Count || (e.Count == m.Count && e.Key < m.Key) {
			mi = i
		}
	}
	ev := s.entries[mi]
	// The new key's prior weight is bounded by both the evicted estimate
	// and the floor (merges can leave entries below the floor).
	m := ev.Count
	if s.floor > m {
		m = s.floor
	}
	s.floor = m
	delete(s.idx, ev.Key)
	s.idx[key] = mi
	s.entries[mi] = Entry{Key: key, Count: m + w, Err: m}
}

// Estimate returns the bracketed estimate for key: est-err <= true <=
// est. For an unmonitored key it returns (Floor, Floor).
func (s *Sketch) Estimate(key uint64) (est, err uint64) {
	if i, ok := s.idx[key]; ok {
		return s.entries[i].Count, s.entries[i].Err
	}
	return s.floor, s.floor
}

// Top returns the monitored entries in canonical order (count
// descending, key ascending), freshly allocated.
func (s *Sketch) Top() []Entry {
	out := append([]Entry(nil), s.entries...)
	sortEntries(out)
	return out
}

// Clone deep-copies the sketch.
func (s *Sketch) Clone() *Sketch {
	c := &Sketch{k: s.k, n: s.n, floor: s.floor}
	c.entries = append([]Entry(nil), s.entries...)
	c.idx = make(map[uint64]int, len(c.entries))
	for i, e := range c.entries {
		c.idx[e.Key] = i
	}
	return c
}

// Merge folds o into s. Shared keys sum counts and errors exactly; a
// key monitored on only one side absorbs the other side's Floor into
// both count and error (it may have carried that much unseen weight).
// The union is canonicalized and truncated back to capacity, raising
// Floor by the truncated estimates. Merge is exactly commutative; it is
// associative when no truncation occurs and bounds-preserving always.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || (o.n == 0 && o.floor == 0 && len(o.entries) == 0) {
		return
	}
	a1, a2 := s.floor, o.floor
	merged := make([]Entry, 0, len(s.entries)+len(o.entries))
	for _, e := range s.entries {
		if j, ok := o.idx[e.Key]; ok {
			oe := o.entries[j]
			merged = append(merged, Entry{Key: e.Key, Count: e.Count + oe.Count, Err: e.Err + oe.Err})
		} else {
			merged = append(merged, Entry{Key: e.Key, Count: e.Count + a2, Err: e.Err + a2})
		}
	}
	for _, e := range o.entries {
		if _, ok := s.idx[e.Key]; !ok {
			merged = append(merged, Entry{Key: e.Key, Count: e.Count + a1, Err: e.Err + a1})
		}
	}
	sortEntries(merged)
	floor := a1 + a2
	if len(merged) > s.k {
		for _, e := range merged[s.k:] {
			if e.Count > floor {
				floor = e.Count
			}
		}
		merged = merged[:s.k:s.k]
	}
	s.n += o.n
	s.floor = floor
	s.entries = merged
	s.idx = make(map[uint64]int, len(merged))
	for i, e := range merged {
		s.idx[e.Key] = i
	}
}

// MergeMany folds a batch of sketches into s with one combine-and-
// truncate step. Bounds-wise it dominates any chain of pairwise Merges:
// each pairwise truncation bakes its discards into the floor that every
// later-absent key then absorbs, while a single combine truncates once,
// so the resulting floor and per-entry errors are never larger than a
// sequential order's. Cost-wise it is one pass over all entries plus one
// sort instead of a sort and map rebuild per part — the difference
// between O(cover·K log K) and O(E log E) when a Resolve folds hundreds
// of covered cells. MergeMany(s, [o]) computes exactly Merge(s, o), and
// the result is a pure function of the multiset of contributors.
func (s *Sketch) MergeMany(parts []*Sketch) {
	type acc struct {
		key        uint64
		count, err uint64
		seen       uint64 // Σ floors of contributors monitoring the key
	}
	total := s.floor // Σ floors across all contributors
	n := s.n
	capE := len(s.entries)
	for _, p := range parts {
		if p != nil {
			capE += len(p.entries)
		}
	}
	accs := make([]acc, 0, capE)
	at := make(map[uint64]int32, capE)
	add := func(entries []Entry, floor uint64) {
		for _, e := range entries {
			if i, ok := at[e.Key]; ok {
				a := &accs[i]
				a.count += e.Count
				a.err += e.Err
				a.seen += floor
				continue
			}
			at[e.Key] = int32(len(accs))
			accs = append(accs, acc{key: e.Key, count: e.Count, err: e.Err, seen: floor})
		}
	}
	add(s.entries, s.floor)
	for _, p := range parts {
		if p == nil || (p.n == 0 && p.floor == 0 && len(p.entries) == 0) {
			continue
		}
		total += p.floor
		n += p.n
		add(p.entries, p.floor)
	}
	merged := make([]Entry, len(accs))
	for i, a := range accs {
		// Contributors not monitoring the key may have carried up to their
		// floors of its weight unseen.
		miss := total - a.seen
		merged[i] = Entry{Key: a.key, Count: a.count + miss, Err: a.err + miss}
	}
	floor := total
	if len(merged) > s.k {
		selectTopK(merged, s.k)
		for _, e := range merged[s.k:] {
			if e.Count > floor {
				floor = e.Count
			}
		}
		merged = merged[:s.k:s.k]
	}
	sortEntries(merged)
	s.n = n
	s.floor = floor
	s.entries = merged
	s.idx = make(map[uint64]int, len(merged))
	for i, e := range merged {
		s.idx[e.Key] = i
	}
}

func sortEntries(es []Entry) {
	sort.Slice(es, func(i, j int) bool { return entryBefore(es[i], es[j]) })
}

// entryBefore is the canonical entry order: count descending, key
// ascending. It is total (keys are distinct), which is what makes the
// selectTopK split deterministic.
func entryBefore(a, b Entry) bool {
	if a.Count != b.Count {
		return a.Count > b.Count
	}
	return a.Key < b.Key
}

// selectTopK partially partitions es so es[:k] holds the k first
// entries under the canonical order, in expected O(len(es)) — the
// MergeMany truncation step, where sorting the full union would cost
// O(E log E) to keep only K. Which entries land in es[:k] is
// deterministic because the order is total; their internal order is not,
// so callers sort the prefix afterwards.
func selectTopK(es []Entry, k int) {
	lo, hi := 0, len(es)-1
	for lo < hi {
		// Median-of-three pivot, parked at hi.
		mid := lo + (hi-lo)/2
		if entryBefore(es[mid], es[lo]) {
			es[mid], es[lo] = es[lo], es[mid]
		}
		if entryBefore(es[hi], es[lo]) {
			es[hi], es[lo] = es[lo], es[hi]
		}
		if entryBefore(es[hi], es[mid]) {
			es[hi], es[mid] = es[mid], es[hi]
		}
		es[mid], es[hi] = es[hi], es[mid]
		pivot := es[hi]
		i := lo
		for j := lo; j < hi; j++ {
			if entryBefore(es[j], pivot) {
				es[i], es[j] = es[j], es[i]
				i++
			}
		}
		es[i], es[hi] = es[hi], es[i]
		if i >= k {
			hi = i - 1
		} else {
			lo = i + 1
		}
	}
}
