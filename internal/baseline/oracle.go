package baseline

import (
	"mind/internal/schema"
	"mind/internal/store"
)

// Oracle is the centralized architecture reduced to its essence: one
// in-process index over the same storage engine MIND's nodes use, with
// no transport in the way. The chaos harness mirrors every surviving
// insert into an Oracle and compares range-query answers against the
// distributed system's — the §5-style centralized reference turned into
// a differential-testing ground truth.
type Oracle struct {
	sch *schema.Schema
	kd  *store.KD
}

// NewOracle creates an empty centralized reference index.
func NewOracle(sch *schema.Schema) *Oracle {
	return &Oracle{sch: sch, kd: store.NewKD(sch)}
}

// Insert stores a record. The caller decides what "surviving insert"
// means (typically: the distributed insert was acked).
func (o *Oracle) Insert(rec schema.Record) { o.kd.Insert(rec) }

// Query returns every stored record matching the rect over the indexed
// dimensions.
func (o *Oracle) Query(rect schema.Rect) []schema.Record { return o.kd.Query(rect) }

// Count returns the number of stored records matching the rect.
func (o *Oracle) Count(rect schema.Rect) int { return o.kd.Count(rect) }

// Len returns the total record count.
func (o *Oracle) Len() int { return o.kd.Len() }
