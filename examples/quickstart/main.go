// Quickstart: build an 8-node MIND overlay on the in-process simulated
// network, create a multi-dimensional index, insert records from
// different nodes, and run range queries from another node.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"mind/internal/cluster"
	"mind/internal/mind"
	"mind/internal/schema"
	"mind/internal/transport/simnet"
)

func main() {
	// An index over (bytes, timestamp, port) with a free-form payload
	// attribute. The first three attributes are the indexed dimensions.
	sch := &schema.Schema{
		Tag: "demo",
		Attrs: []schema.Attr{
			{Name: "bytes", Kind: schema.KindUint, Max: 1 << 20},
			{Name: "ts", Kind: schema.KindTime, Max: 86400},
			{Name: "port", Kind: schema.KindPort, Max: 65535},
			{Name: "payload", Kind: schema.KindUint},
		},
		IndexDims: 3,
	}

	// Eight nodes on a simulated 10 ms network; node 0 bootstraps the
	// hypercube and the others join it.
	c, err := cluster.New(cluster.Options{
		N:    8,
		Seed: 42,
		Sim:  simnet.Config{Seed: 42, DefaultLatency: 10 * time.Millisecond},
		Node: mind.DefaultConfig(42),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("overlay codes:")
	for _, nd := range c.Nodes {
		fmt.Printf("  %s → %s\n", nd.Addr(), nd.Code())
	}

	// create_index floods the schema to every node (§3.2, §3.4).
	if err := c.CreateIndex(sch); err != nil {
		log.Fatal(err)
	}

	// insert_record from any node: each record routes to the owner of
	// its position in the data space (§3.5).
	fmt.Println("\ninserting 64 records from 8 different nodes...")
	for i := 0; i < 64; i++ {
		rec := schema.Record{
			uint64(i * 1000),     // bytes
			uint64(i * 900),      // ts
			uint64(80 + i%3*363), // port: 80, 443, 806
			uint64(i),            // payload
		}
		res, _, err := c.InsertWait(i%8, "demo", rec)
		if err != nil || !res.OK {
			log.Fatalf("insert %d failed: %v %+v", i, err, res)
		}
	}
	for _, nd := range c.Nodes {
		fmt.Printf("  %s stores %d records\n", nd.Addr(), nd.StoredRecords("demo"))
	}

	// query_index: a multi-dimensional range query. "All transfers of
	// 10–40 KB on port 80 in the first 6 hours."
	q := schema.Rect{
		Lo: []uint64{10_000, 0, 80},
		Hi: []uint64{40_000, 6 * 3600, 80},
	}
	res, lat, err := c.QueryWait(7, "demo", q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery %v\n  complete=%v in %v, touched %d nodes, %d records:\n",
		q, res.Complete, lat, res.Responders, len(res.Records))
	for _, rec := range res.Records {
		fmt.Printf("  bytes=%-6d ts=%-6d port=%-4d payload=%d\n", rec[0], rec[1], rec[2], rec[3])
	}
}
