package metrics

import (
	"sync"
	"time"
)

// Meter counts events into fixed time buckets so a load driver can
// report sustained rather than instantaneous rates: the peak average
// over a window of consecutive buckets is the "knee" headline
// (mindload -stream), robust against warm-up and drain edges. Time is
// passed in explicitly so the meter is deterministic under test.
type Meter struct {
	mu     sync.Mutex
	bucket time.Duration
	start  time.Time
	counts []uint64
}

// NewMeter returns a meter with the given bucket width, anchored at
// start.
func NewMeter(start time.Time, bucket time.Duration) *Meter {
	if bucket <= 0 {
		bucket = time.Second
	}
	return &Meter{bucket: bucket, start: start}
}

// Add records n events at time now. Events before the anchor land in
// the first bucket.
func (m *Meter) Add(now time.Time, n uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	i := 0
	if d := now.Sub(m.start); d > 0 {
		i = int(d / m.bucket)
	}
	for len(m.counts) <= i {
		m.counts = append(m.counts, 0)
	}
	m.counts[i] += n
}

// Total returns the total event count.
func (m *Meter) Total() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var t uint64
	for _, c := range m.counts {
		t += c
	}
	return t
}

// Sustained returns the best average events-per-second over any window
// of win consecutive buckets (0 when fewer than win buckets exist). A
// window of 1 is the peak bucket rate; wider windows demand the rate be
// held.
func (m *Meter) Sustained(win int) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if win <= 0 {
		win = 1
	}
	if len(m.counts) < win {
		return 0
	}
	var sum, best uint64
	for i, c := range m.counts {
		sum += c
		if i >= win {
			sum -= m.counts[i-win]
		}
		if i >= win-1 && sum > best {
			best = sum
		}
	}
	return float64(best) / (float64(win) * m.bucket.Seconds())
}

// Rate returns the average events-per-second across every whole bucket
// observed so far.
func (m *Meter) Rate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.counts) == 0 {
		return 0
	}
	var t uint64
	for _, c := range m.counts {
		t += c
	}
	return float64(t) / (float64(len(m.counts)) * m.bucket.Seconds())
}
