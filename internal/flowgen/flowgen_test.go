package flowgen

import (
	"math"
	"testing"

	"mind/internal/schema"
	"mind/internal/topo"
)

func smallConfig(seed int64) Config {
	c := DefaultConfig(seed)
	c.NumDstPrefixes = 256
	c.NumSrcPrefixes = 256
	c.BaseFlowsPerSec = 5
	return c
}

func TestDeterminism(t *testing.T) {
	collect := func() []Flow {
		g := New(smallConfig(42))
		var out []Flow
		g.Generate(0, 60, func(f Flow) { out = append(out, f) })
		return out
	}
	a, b := collect(), collect()
	if len(a) == 0 {
		t.Fatal("no flows generated")
	}
	if len(a) != len(b) {
		t.Fatalf("different counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flow %d differs", i)
		}
	}
}

func TestTimestampOrderAndValidity(t *testing.T) {
	g := New(smallConfig(1))
	prev := uint64(0)
	n := 0
	g.Generate(100, 160, func(f Flow) {
		n++
		if f.Start < prev {
			t.Fatalf("timestamps out of order: %d after %d", f.Start, prev)
		}
		prev = f.Start
		if f.Start < 100 || f.Start >= 160 {
			t.Fatalf("timestamp %d outside window", f.Start)
		}
		if f.Node < 0 || f.Node >= len(g.Config().Routers) {
			t.Fatalf("bad node %d", f.Node)
		}
		if f.Octets == 0 || f.Packets == 0 {
			t.Fatal("empty flow")
		}
		if f.SrcIP > 0xffffffff || f.DstIP > 0xffffffff {
			t.Fatalf("flow outside IPv4 space: src=%s dst=%s",
				schema.FormatIPv4(f.SrcIP), schema.FormatIPv4(f.DstIP))
		}
		if f.SrcIP&0xff == 0 || f.DstIP&0xff == 0 {
			t.Fatal("host part must be nonzero")
		}
	})
	if n == 0 {
		t.Fatal("no flows")
	}
}

func TestZipfSkew(t *testing.T) {
	g := New(smallConfig(7))
	counts := map[uint64]int{}
	total := 0
	g.Generate(0, 300, func(f Flow) {
		counts[schema.Prefix24(f.DstIP)]++
		total++
	})
	top := 0
	for _, c := range counts {
		if c > top {
			top = c
		}
	}
	// Zipf s=1.15: the hottest /24 should hold a large share.
	if float64(top)/float64(total) < 0.05 {
		t.Errorf("top prefix share %.3f too flat for Zipf", float64(top)/float64(total))
	}
	if len(counts) < 20 {
		t.Errorf("only %d distinct prefixes", len(counts))
	}
}

func TestDiurnalModulation(t *testing.T) {
	g := New(smallConfig(9))
	count := func(startHour int) int {
		n := 0
		start := uint64(startHour * 3600)
		g.Generate(start, start+600, func(Flow) { n++ })
		return n
	}
	peak := count(14)  // 14:00
	trough := count(2) // 02:00
	if float64(trough) > 0.75*float64(peak) {
		t.Errorf("diurnal modulation weak: trough=%d peak=%d", trough, peak)
	}
}

func TestSamplingRateAsymmetry(t *testing.T) {
	// Abilene monitors (1/100 sampling) must emit ~10× the records of
	// GÉANT monitors (1/1000) per unit weight.
	g := New(smallConfig(11))
	rs := g.Config().Routers
	abilene, geant := 0.0, 0.0
	abW, geW := 0.0, 0.0
	for _, r := range rs {
		if r.Network == topo.Abilene {
			abW += r.Weight
		} else {
			geW += r.Weight
		}
	}
	g.Generate(36000, 36600, func(f Flow) {
		if rs[f.Node].Network == topo.Abilene {
			abilene++
		} else {
			geant++
		}
	})
	ratio := (abilene / abW) / (geant / geW)
	if ratio < 6 || ratio > 16 {
		t.Errorf("Abilene/GÉANT per-weight record ratio = %.1f, want ≈10", ratio)
	}
}

func TestHourlyChurnShiftsDistribution(t *testing.T) {
	g := New(smallConfig(13))
	hist := func(startSec uint64) map[uint64]float64 {
		m := map[uint64]float64{}
		n := 0.0
		g.Generate(startSec, startSec+900, func(f Flow) {
			m[schema.Prefix24(f.SrcIP)]++
			n++
		})
		for k := range m {
			m[k] /= n
		}
		return m
	}
	l1 := func(a, b map[uint64]float64) float64 {
		keys := map[uint64]bool{}
		for k := range a {
			keys[k] = true
		}
		for k := range b {
			keys[k] = true
		}
		s := 0.0
		for k := range keys {
			s += math.Abs(a[k] - b[k])
		}
		return s / 2
	}
	h10 := hist(10 * 3600)
	h14 := hist(14 * 3600)
	h10NextDay := hist(86400 + 10*3600)
	hourly := l1(h10, h14)
	daily := l1(h10, h10NextDay)
	if daily >= hourly {
		t.Errorf("daily mismatch %.3f should be below hourly %.3f", daily, hourly)
	}
}

func TestPoisson(t *testing.T) {
	g := New(smallConfig(17))
	for _, lambda := range []float64{0, 0.5, 3, 50} {
		n := 10000
		sum := 0
		for i := 0; i < n; i++ {
			sum += g.poisson(lambda)
		}
		mean := float64(sum) / float64(n)
		if math.Abs(mean-lambda) > 0.15*lambda+0.05 {
			t.Errorf("poisson(%v) mean = %v", lambda, mean)
		}
	}
}

func TestFlowOctetsHeavyTail(t *testing.T) {
	g := New(smallConfig(19))
	var big, n int
	var max uint64
	for i := 0; i < 200000; i++ {
		o := g.flowOctets()
		n++
		if o > 100_000 {
			big++
		}
		if o > max {
			max = o
		}
	}
	if big == 0 {
		t.Error("no tail flows in 200k draws")
	}
	if max < 1_000_000 {
		t.Errorf("max flow only %d bytes; tail too light", max)
	}
}

func TestAnomalyInjection(t *testing.T) {
	g := New(smallConfig(23))
	idx := g.Inject(Anomaly{
		Kind: AlphaFlow, Start: 100, Duration: 10,
		SrcPrefix: SrcPrefix(5), DstPrefix: DstPrefix(8), DstPort: 80,
		Routers: []int{2, 3}, Intensity: 50_000_000,
	})
	if idx != 0 || len(g.Anomalies()) != 1 {
		t.Fatal("ledger wrong")
	}
	seen := map[int]uint64{}
	g.Generate(95, 120, func(f Flow) {
		if schema.Prefix24(f.DstIP) == DstPrefix(8) && schema.Prefix24(f.SrcIP) == SrcPrefix(5) {
			seen[f.Node] += f.Octets
		}
	})
	if seen[2] < 40_000_000 || seen[3] < 40_000_000 {
		t.Errorf("alpha flow volumes per router: %v", seen)
	}
	// Not active outside its window.
	outside := uint64(0)
	g.Generate(200, 210, func(f Flow) {
		if schema.Prefix24(f.SrcIP) == SrcPrefix(5) && schema.Prefix24(f.DstIP) == DstPrefix(8) {
			outside += f.Octets
		}
	})
	if outside > 1_000_000 {
		t.Errorf("anomaly leaked outside window: %d bytes", outside)
	}
}

func TestDoSFanout(t *testing.T) {
	g := New(smallConfig(29))
	g.Inject(Anomaly{
		Kind: DoS, Start: 50, Duration: 30,
		SrcPrefix: SrcPrefix(100), DstPrefix: DstPrefix(30), DstPort: 80,
		Routers: []int{0}, Intensity: 80,
	})
	srcs := map[uint64]bool{}
	flows := 0
	g.Generate(50, 80, func(f Flow) {
		if schema.Prefix24(f.SrcIP) == SrcPrefix(100) {
			srcs[f.SrcIP] = true
			flows++
		}
	})
	if len(srcs) < 50 {
		t.Errorf("DoS used only %d distinct sources", len(srcs))
	}
	if flows < 30*70 {
		t.Errorf("DoS emitted only %d flows", flows)
	}
}

func TestPortScanSweepsHosts(t *testing.T) {
	g := New(smallConfig(31))
	g.Inject(Anomaly{
		Kind: PortScan, Start: 10, Duration: 20,
		SrcPrefix: SrcPrefix(50), DstPrefix: DstPrefix(60), DstPort: 3306,
		Routers: []int{1}, Intensity: 40,
	})
	hosts := map[uint64]bool{}
	g.Generate(10, 30, func(f Flow) {
		if schema.Prefix24(f.DstIP) == DstPrefix(60) && f.DstPort == 3306 {
			hosts[f.DstIP] = true
		}
	})
	if len(hosts) < 100 {
		t.Errorf("scan touched only %d hosts", len(hosts))
	}
}

func TestStandardAnomalies(t *testing.T) {
	g := New(smallConfig(37))
	as := g.StandardAnomalies(1000)
	if len(as) != 6 {
		t.Fatalf("standard ledger = %d anomalies", len(as))
	}
	kinds := map[AnomalyKind]int{}
	for _, a := range as {
		kinds[a.Kind]++
		if !a.Active(a.Start) || a.Active(a.Start+a.Duration) {
			t.Error("Active window wrong")
		}
	}
	if kinds[AlphaFlow] != 3 || kinds[DoS] != 2 || kinds[PortScan] != 1 {
		t.Errorf("kind mix = %v", kinds)
	}
}

func TestGroundTruthRect(t *testing.T) {
	a := Anomaly{Kind: AlphaFlow, Start: 720, Duration: 60}
	r := a.GroundTruthRect(true, 86400)
	if !r.Valid() {
		t.Fatal("invalid rect")
	}
	if r.Lo[1] != 600 || r.Hi[1] != 899 {
		t.Errorf("time window = [%d,%d], want the surrounding 5-min window", r.Lo[1], r.Hi[1])
	}
	wantFloor := uint64(4_000_000)
	if wantFloor > schema.OctetsBound {
		wantFloor = schema.OctetsBound
	}
	if r.Lo[2] != wantFloor {
		t.Errorf("volume floor = %d, want %d (clamped to bound)", r.Lo[2], wantFloor)
	}
	s := Anomaly{Kind: PortScan, Start: 720, Duration: 60}
	rs := s.GroundTruthRect(false, 86400)
	if rs.Lo[2] != 1500 {
		t.Errorf("fanout floor = %d", rs.Lo[2])
	}
}

func TestAnomalyKindString(t *testing.T) {
	if AlphaFlow.String() != "alpha-flow" || AnomalyKind(99).String() == "" {
		t.Error("kind names wrong")
	}
}
