// Package experiments regenerates every table and figure of the paper's
// evaluation (§2.2 Figs 1–3, §4 Figs 7–16, §5 Fig 17) on the simulated
// substrate. Each experiment returns a Report with the same rows or
// series the paper plots, plus named scalar Values that the benchmark
// harness and tests assert shape properties on (who wins, by roughly
// what factor, where crossovers fall).
package experiments

import (
	"fmt"
	"sort"
	"time"

	"mind/internal/aggregate"
	"mind/internal/cluster"
	"mind/internal/flowgen"
	"mind/internal/hypercube"
	"mind/internal/metrics"
	"mind/internal/mind"
	"mind/internal/schema"
)

// Report is one experiment's regenerated output.
type Report struct {
	ID    string
	Title string
	// Tables holds the printed rows/series.
	Tables []*metrics.Table
	// Notes carries free-form observations (paper-vs-measured).
	Notes []string
	// Values exposes headline numbers for programmatic shape checks.
	Values map[string]float64
}

func newReport(id, title string) *Report {
	return &Report{ID: id, Title: title, Values: make(map[string]float64)}
}

func (r *Report) table(t *metrics.Table) { r.Tables = append(r.Tables, t) }

func (r *Report) notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the full report.
func (r *Report) String() string {
	s := fmt.Sprintf("=== %s — %s ===\n", r.ID, r.Title)
	for _, t := range r.Tables {
		s += t.String() + "\n"
	}
	for _, n := range r.Notes {
		s += "note: " + n + "\n"
	}
	return s
}

// Runner is an experiment entry point; scale in (0,1] shrinks the
// workload proportionally (1 = paper-scale shape run).
type Runner func(seed int64, scale float64) (*Report, error)

// Registry maps experiment ids to runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig1":    Fig1,
		"fig2":    Fig2,
		"fig3":    Fig3,
		"fig7":    Fig7,
		"fig8":    Fig8,
		"fig9":    Fig9,
		"fig10":   Fig10,
		"fig11":   Fig11,
		"fig12":   Fig12,
		"fig13":   Fig13,
		"fig14":   Fig14,
		"fig15":   Fig15,
		"fig16":   Fig16,
		"table17": Table17,

		"ablation-cuts":     AblationCuts,
		"ablation-cutorder": AblationCutOrder,
		"ablation-hist":     AblationHistGranularity,
		"ablation-store":    AblationStore,
		"ablation-arch":     AblationArchitectures,
		"ablation-history":  AblationHistoryPointer,
		"ablation-recovery": AblationRecovery,

		"ingest-stream": IngestStream,
		"overload":      Overload,
		"store-layout":  StoreLayout,
		"whale-agg":     WhaleAgg,
	}
}

// IDs lists registered experiment ids in stable order.
func IDs() []string {
	reg := Registry()
	out := make([]string, 0, len(reg))
	for id := range reg {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id.
func Run(id string, seed int64, scale float64) (*Report, error) {
	r, ok := Registry()[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("experiments: scale %v out of (0,1]", scale)
	}
	return r(seed, scale)
}

// --- shared workload machinery -------------------------------------------

// timedRec is one index record tagged with its insertion time and source
// monitor.
type timedRec struct {
	at   uint64 // unix second the monitor emits the record
	node int
	tag  string
	rec  schema.Record
}

// indexSet bundles the paper's three indices for an experiment horizon.
type indexSet struct {
	horizon uint64
	i1      *schema.Schema
	i2      *schema.Schema
	i3      *schema.Schema
}

func paperIndices(horizon uint64) indexSet {
	return indexSet{
		horizon: horizon,
		i1:      schema.Index1(horizon),
		i2:      schema.Index2(horizon),
		i3:      schema.Index3(horizon),
	}
}

// buildWorkload aggregates a flow stream into timed index records per
// §4.1: 30-second windows, per-index filters, emitted at window close.
// Which indices to materialize is selected by the booleans.
func buildWorkload(g *flowgen.Generator, from, to uint64, ix indexSet, want1, want2, want3 bool) []timedRec {
	return buildWorkloadTap(g, from, to, ix, want1, want2, want3, nil)
}

// buildWorkloadTap is buildWorkload with a raw-flow tap, so an off-line
// detector can consume the identical stream (§5 cross-check).
func buildWorkloadTap(g *flowgen.Generator, from, to uint64, ix indexSet, want1, want2, want3 bool, tap func(flowgen.Flow)) []timedRec {
	var out []timedRec
	emit12 := func(ws uint64, aggs []*aggregate.Agg) {
		at := ws + 30
		for _, a := range aggs {
			if want1 {
				if rec, ok := aggregate.Index1Record(ws, a); ok {
					out = append(out, timedRec{at: at, node: a.Key.Node, tag: ix.i1.Tag, rec: rec})
				}
			}
			if want2 {
				if rec, ok := aggregate.Index2Record(ws, a); ok {
					out = append(out, timedRec{at: at, node: a.Key.Node, tag: ix.i2.Tag, rec: rec})
				}
			}
		}
	}
	emit3 := func(ws uint64, aggs []*aggregate.Agg) {
		at := ws + 30
		for _, a := range aggs {
			if rec, ok := aggregate.Index3Record(ws, a); ok {
				out = append(out, timedRec{at: at, node: a.Key.Node, tag: ix.i3.Tag, rec: rec})
			}
		}
	}
	w12 := aggregate.NewWindower(aggregate.Config{WindowSec: 30}, emit12)
	w3 := aggregate.NewWindower(aggregate.Config{WindowSec: 30, SplitPorts: true}, emit3)
	g.Generate(from, to, func(f flowgen.Flow) {
		if tap != nil {
			tap(f)
		}
		if want1 || want2 {
			w12.Add(f)
		}
		if want3 {
			w3.Add(f)
		}
	})
	w12.Flush()
	w3.Flush()
	sort.SliceStable(out, func(i, j int) bool { return out[i].at < out[j].at })
	return out
}

// insertSample records one insertion's outcome.
type insertSample struct {
	at   time.Time
	lat  time.Duration
	hops int
	ok   bool
}

// driveInserts replays timed records into the cluster in virtual time:
// the clock advances to each record's emission instant (with a small
// deterministic per-node spread inside the window) and the insert is
// issued from the record's monitor node. It returns one sample per
// insert after draining the tail.
func driveInserts(c *cluster.Cluster, recs []timedRec, wallStart uint64) []insertSample {
	samples := make([]insertSample, len(recs))
	issued := 0
	done := 0
	epoch := c.Net.Now()
	for i, tr := range recs {
		// Spread same-window emissions across the window deterministically.
		offMs := uint64(tr.node*977+i*131) % 27000
		at := epoch.Add(time.Duration(tr.at-wallStart)*time.Second + time.Duration(offMs)*time.Millisecond)
		if at.After(c.Net.Now()) {
			c.Net.RunFor(at.Sub(c.Net.Now()))
		}
		i := i
		start := c.Net.Now()
		node := c.Nodes[tr.node%len(c.Nodes)]
		samples[i].at = start
		issued++
		err := node.Insert(tr.tag, tr.rec, func(res mind.InsertResult) {
			samples[i].lat = c.Net.Now().Sub(start)
			samples[i].hops = res.Hops
			samples[i].ok = res.OK
			done++
		})
		if err != nil {
			samples[i].ok = false
			done++
		}
	}
	c.Net.RunUntil(func() bool { return done >= issued }, 100_000_000)
	return samples
}

// querySample records one query's outcome.
type querySample struct {
	at         time.Time
	lat        time.Duration
	responders int
	maxHops    int
	complete   bool
	records    int
}

// querySpec describes the periodic monitoring queries of §4.1: ranges
// uniform in every attribute except the timestamp, which is always the
// last five minutes.
type querySpec struct {
	tag    string
	bounds []uint64 // attribute bounds (indexed dims)
	timeAt int      // timestamp dimension index
}

// driveQueries issues count queries from rotating nodes at the current
// virtual time, pumping the network to completion after each. rng must
// be deterministic per experiment.
func driveQueries(c *cluster.Cluster, spec querySpec, count int, now uint64, rnd func() uint64) []querySample {
	samples := make([]querySample, 0, count)
	for q := 0; q < count; q++ {
		rect := rectFor(spec, now, rnd)
		from := int(rnd() % uint64(len(c.Nodes)))
		res, lat, err := c.QueryWait(from, spec.tag, rect)
		if err != nil {
			continue
		}
		samples = append(samples, querySample{
			at:         c.Net.Now(),
			lat:        lat,
			responders: res.Responders,
			maxHops:    res.MaxHops,
			complete:   res.Complete,
			records:    len(res.Records),
		})
	}
	return samples
}

// fastOverlayConfig tightens protocol timers for virtual-time runs.
func fastOverlayConfig() hypercube.Config {
	c := hypercube.DefaultConfig()
	c.HeartbeatInterval = 2 * time.Second
	c.FailAfter = 7 * time.Second
	c.JoinTimeout = 3 * time.Second
	c.JoinRetryBackoff = 500 * time.Millisecond
	c.PrepareTimeout = 2 * time.Second
	return c
}

// nodeConfig builds the standard experiment node configuration.
func nodeConfig(seed int64) mind.Config {
	cfg := mind.DefaultConfig(seed)
	cfg.Overlay = fastOverlayConfig()
	cfg.InsertTimeout = 60 * time.Second
	cfg.QueryTimeout = 60 * time.Second
	// The figure reproductions run over bandwidth-limited WAN links where
	// a healthy insert takes 1–2 s end to end (Fig 7) and the simulation
	// drops nothing: scale the reliable layer's backoff to that latency
	// so it only retransmits genuinely stuck operations, not merely slow
	// ones — the default 1 s base would double the measured traffic.
	cfg.RetryBase = 10 * time.Second
	cfg.RetryMax = 30 * time.Second
	return cfg
}

// xorshift is a tiny deterministic generator for query parameters.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}
