package mind

import (
	"time"

	"mind/internal/hypercube"
)

// Config tunes a MIND node.
type Config struct {
	// Overlay is the hypercube protocol configuration.
	Overlay hypercube.Config
	// Seed drives node-local randomness (join sampling, request ids).
	Seed int64

	// Replication is the number of replicas per stored record, placed at
	// the hypercube neighbors sharing the longest code prefixes (§3.8):
	// 0 disables replication, ReplicateAll replicates at one contact per
	// neighbor level ("full replication" in Fig 16).
	Replication int

	// InsertDepthSlack is how many bits past the local code length the
	// insertion target code is computed to; receivers extend it further
	// when their codes are deeper.
	InsertDepthSlack int

	// InsertTimeout bounds how long an originator waits for an
	// insertion ack before reporting failure.
	InsertTimeout time.Duration
	// QueryTimeout bounds how long an originator waits for complete
	// query coverage before returning partial results.
	QueryTimeout time.Duration

	// RetryBase is the delay before the first retransmission of an
	// un-acked insert or un-covered query region; each further attempt
	// doubles it (plus deterministic jitter from the node's seeded RNG)
	// up to RetryMax. RetryBase 0 disables the reliable request layer
	// (operations become single-shot datagrams bounded only by the
	// operation timeouts, the pre-retry behavior).
	RetryBase time.Duration
	// RetryMax caps the backoff between retransmissions.
	RetryMax time.Duration
	// MaxRetries is how many retransmissions an originator sends before
	// giving up and feeding the suspected first hop to the overlay's
	// failure machinery. 0 disables the reliable request layer.
	MaxRetries int

	// VersionSeconds is the length of one index version period (the
	// paper versions indices daily: 86400).
	VersionSeconds uint64

	// HistoryTTL is how long after a split the joiner forwards
	// sub-queries to its split sibling for data stored before the split
	// (§3.4's history pointer; "the pointer will be dropped once the
	// data have aged").
	HistoryTTL time.Duration
	// TransferOnSplit, when set, moves the joiner-region records from
	// the split target to the joiner instead of using a history pointer.
	// The paper avoids data movement; this mode exists as an ablation.
	TransferOnSplit bool

	// BatchMaxMsgs enables per-destination message coalescing when > 1:
	// outgoing messages to the same peer buffer until this many are
	// pending (or BatchMaxBytes accumulate), then leave as one
	// wire.Batch. Zero or one disables coalescing (every message is sent
	// immediately and alone, the pre-batching behavior).
	BatchMaxMsgs int
	// BatchMaxBytes flushes a pending batch early once its encoded
	// payload reaches this size; 0 means no byte-based flush.
	BatchMaxBytes int
	// BatchLinger bounds how long a pending batch may wait for more
	// messages before flushing. The default 0 still coalesces — the
	// flush fires on the next clock tick, capturing messages enqueued in
	// the same synchronous burst (replication fan-out, InsertBatch
	// groups) without delaying anything in wall/virtual time.
	BatchLinger time.Duration

	// QueryParallelism bounds the worker pool used for local query
	// execution: sub-query decomposition fan-out and per-version k-d
	// resolution. Zero or one executes inline in deterministic order —
	// required under simnet, where send order must be reproducible for a
	// fixed seed (DefaultConfig leaves it 0). Values above one trade that
	// ordering guarantee for parallel local execution on real transports.
	QueryParallelism int

	// StoreShards is the per-core shard count of each index's store
	// engine (internal/store.Options.Shards): every shard owns its own
	// writer mutex and static+delta pair, so insert throughput scales to
	// the shard count and each shard's working set stays cache-sized.
	// Zero selects the store's deterministic default (1) — like
	// QueryParallelism, the default must not probe the hardware, because
	// shard placement shapes result ordering and merge timing and simnet
	// seeds must replay identically on every machine. Hash routing means
	// reads traverse every shard, so shard only where writers contend;
	// mindnode sizes it to the machine via -store-shards (default
	// GOMAXPROCS).
	StoreShards int
	// DeltaMergeFrac bounds each store shard's delta buffer as a
	// fraction of its static partner's size before a merge rebuild
	// (internal/store.Options.DeltaMergeFrac). Zero selects the store
	// default (0.25).
	DeltaMergeFrac float64

	// SummaryDepth is the per-node aggregate rollup's cut depth
	// (internal/summary.Options.Depth): aggregate answers touch at most
	// O(2·Depth) rollup cells plus the boundary-cell store scans. Zero
	// selects the summary default (8).
	SummaryDepth int
	// SummaryTopK is the heavy-hitter sketch capacity per rollup level
	// (internal/summary.Options.K) and the default top-k width of Agg
	// answers. Zero selects the summary default (32).
	SummaryTopK int
	// SummaryDeltaMax bounds each summary's insert delta before it folds
	// into the static rollup (internal/summary.Options.DeltaMax). Zero
	// selects the summary default (256).
	SummaryDeltaMax int

	// ClientRateLimit enables per-client token-bucket admission control
	// on inbound client RPCs (ClientInsert / ClientQuery / index
	// control), in requests per second per client address. A refused
	// request is shed explicitly — ClientAck{Shed:true} or
	// ClientQueryResp{Shed:true} — without recording its request id, so
	// a later retry is re-admitted. 0 disables (the default: lab runs
	// and the chaos harness see no admission at all).
	ClientRateLimit float64
	// ClientRateBurst is the bucket capacity (and a new client's opening
	// balance); 0 defaults to ClientRateLimit.
	ClientRateBurst int
	// GossipRateLimit enables per-peer admission control on flood and
	// control gossip (CreateIndex, DropIndex, HistInstall,
	// RetireVersion, RegionRecall), in messages per second per peer.
	// Refused floods are counted and dropped before the dedup mark, so
	// the operation still propagates via another contact or a later
	// arrival. 0 disables.
	GossipRateLimit float64
	// GossipRateBurst is the gossip bucket capacity; 0 defaults to
	// GossipRateLimit.
	GossipRateBurst int
	// MaxPendingOps sheds new ClientInserts while the node already has
	// this many tracked in-flight inserts — the node-level analogue of
	// the ingest engine's ring bound, keeping a request flood from
	// growing the retransmission layer's state without limit. 0
	// disables.
	MaxPendingOps int

	// HistCollectWait is how long the designated aggregation node waits
	// after the first histogram report before computing balanced cuts.
	HistCollectWait time.Duration
	// RetainVersions bounds the dual-version query window: when a cut
	// tree installs for version V, every node locally retires versions
	// more than RetainVersions behind V — cut tree, primary snapshot and
	// replica snapshot — so storage stops growing across reversions.
	// 0 disables auto-retirement (versions live until an explicit
	// RetireVersion).
	RetainVersions int
	// BalancedCutDepth is the explicit depth of installed balanced cut
	// trees.
	BalancedCutDepth int
}

// ReplicateAll selects full replication (one replica per neighbor level).
const ReplicateAll = -1

// DefaultConfig returns production-shaped defaults.
func DefaultConfig(seed int64) Config {
	return Config{
		Overlay:          hypercube.DefaultConfig(),
		Seed:             seed,
		Replication:      1,
		InsertDepthSlack: 16,
		InsertTimeout:    30 * time.Second,
		QueryTimeout:     30 * time.Second,
		RetryBase:        time.Second,
		RetryMax:         8 * time.Second,
		MaxRetries:       4,
		VersionSeconds:   86400,
		HistoryTTL:       10 * time.Minute,
		HistCollectWait:  5 * time.Second,
		BalancedCutDepth: 10,
	}
}
