// Package schema defines MIND index schemas and the multi-attribute data
// records inserted into an index.
//
// Every attribute value in MIND is an unsigned 64-bit integer. This covers
// all the attribute kinds that appear in the paper's network-monitoring
// workloads — IPv4 addresses and prefixes, timestamps (Unix seconds), byte
// counts, fanout counts, flow sizes and node (monitor) identifiers — and
// keeps the data-space embedding uniform.
//
// A schema declares an ordered list of attributes. The first IndexDims
// attributes are the indexed dimensions: they define the multi-dimensional
// data space the index embeds on the overlay, and range queries are
// expressed over them. The remaining attributes are payload carried with
// the record and returned by queries (the paper's Index-1, for example,
// indexes (dest_prefix, timestamp, fanout) and carries (source_prefix,
// node) as payload).
package schema

import (
	"fmt"
	"strings"
)

// Kind documents how an attribute should be interpreted and rendered. It
// has no effect on indexing; all values are uint64.
type Kind uint8

const (
	KindUint Kind = iota // plain counter / size
	KindIPv4             // IPv4 address or /24-style prefix key
	KindTime             // Unix timestamp, seconds
	KindPort             // transport port
	KindNode             // monitor / router identifier
)

var kindNames = map[Kind]string{
	KindUint: "uint",
	KindIPv4: "ipv4",
	KindTime: "time",
	KindPort: "port",
	KindNode: "node",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Attr describes one attribute of an index schema.
type Attr struct {
	Name string
	Kind Kind
	// Max is the inclusive upper bound of the attribute's value range used
	// by the data-space embedding. Values above Max are clamped into the
	// topmost region of the space (the paper assigns out-of-bound tuples
	// "the largest possible range"; fewer than 0.1% of tuples exceed the
	// chosen bounds). Max = 0 means the full uint64 range.
	Max uint64
}

// Bound returns the effective inclusive upper bound of the attribute.
func (a Attr) Bound() uint64 {
	if a.Max == 0 {
		return ^uint64(0)
	}
	return a.Max
}

// Schema describes a MIND index: a globally unique tag, the attribute
// list, and how many leading attributes are indexed dimensions.
type Schema struct {
	Tag       string
	Attrs     []Attr
	IndexDims int
}

// Validate checks structural invariants of the schema.
func (s *Schema) Validate() error {
	if s.Tag == "" {
		return fmt.Errorf("schema: empty tag")
	}
	if len(s.Attrs) == 0 {
		return fmt.Errorf("schema %q: no attributes", s.Tag)
	}
	if s.IndexDims < 1 || s.IndexDims > len(s.Attrs) {
		return fmt.Errorf("schema %q: IndexDims %d out of range [1,%d]", s.Tag, s.IndexDims, len(s.Attrs))
	}
	seen := make(map[string]bool, len(s.Attrs))
	for i, a := range s.Attrs {
		if a.Name == "" {
			return fmt.Errorf("schema %q: attribute %d has empty name", s.Tag, i)
		}
		if seen[a.Name] {
			return fmt.Errorf("schema %q: duplicate attribute %q", s.Tag, a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}

// AttrIndex returns the position of the named attribute, or -1.
func (s *Schema) AttrIndex(name string) int {
	for i, a := range s.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Dims returns the number of indexed dimensions.
func (s *Schema) Dims() int { return s.IndexDims }

// Arity returns the total number of attributes per record.
func (s *Schema) Arity() int { return len(s.Attrs) }

// Bounds returns the inclusive upper bound of each indexed dimension.
func (s *Schema) Bounds() []uint64 {
	b := make([]uint64, s.IndexDims)
	for i := 0; i < s.IndexDims; i++ {
		b[i] = s.Attrs[i].Bound()
	}
	return b
}

// String renders the schema in a compact single-line form.
func (s *Schema) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s(", s.Tag)
	for i, a := range s.Attrs {
		if i > 0 {
			sb.WriteString(", ")
		}
		if i == s.IndexDims {
			sb.WriteString("| ")
		}
		fmt.Fprintf(&sb, "%s:%s", a.Name, a.Kind)
	}
	sb.WriteString(")")
	return sb.String()
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	c := &Schema{Tag: s.Tag, IndexDims: s.IndexDims}
	c.Attrs = append([]Attr(nil), s.Attrs...)
	return c
}

// Record is one multi-attribute data item; Record[i] is the value of
// Attrs[i]. Records are positional and schema-typed by context.
type Record []uint64

// Clone returns a copy of the record.
func (r Record) Clone() Record { return append(Record(nil), r...) }

// Point extracts the indexed-dimension coordinates of the record under the
// given schema, clamping each coordinate to the attribute bound.
func (r Record) Point(s *Schema) []uint64 {
	p := make([]uint64, s.IndexDims)
	for i := 0; i < s.IndexDims; i++ {
		v := r[i]
		if b := s.Attrs[i].Bound(); v > b {
			v = b
		}
		p[i] = v
	}
	return p
}

// PointInto is Point writing into a caller-provided scratch slice
// instead of allocating; it returns dst resized to the indexed
// dimensionality (reallocating only if dst is too small). Hot paths that
// compute a point per record use this to keep one scratch slice alive
// across a whole scan.
func (r Record) PointInto(s *Schema, dst []uint64) []uint64 {
	if cap(dst) < s.IndexDims {
		dst = make([]uint64, s.IndexDims)
	}
	dst = dst[:s.IndexDims]
	for i := 0; i < s.IndexDims; i++ {
		v := r[i]
		if b := s.Attrs[i].Bound(); v > b {
			v = b
		}
		dst[i] = v
	}
	return dst
}

// CheckRecord verifies the record arity against the schema.
func (s *Schema) CheckRecord(r Record) error {
	if len(r) != len(s.Attrs) {
		return fmt.Errorf("schema %q: record has %d attributes, want %d", s.Tag, len(r), len(s.Attrs))
	}
	return nil
}

// Rect is an axis-aligned hyper-rectangle over the indexed dimensions,
// with inclusive bounds: Lo[i] <= x_i <= Hi[i]. A query in MIND is a Rect
// (wildcarded attributes use the full [0, bound] range).
type Rect struct {
	Lo, Hi []uint64
}

// NewRect allocates a rect of the given dimensionality spanning the whole
// space defined by bounds.
func NewRect(bounds []uint64) Rect {
	lo := make([]uint64, len(bounds))
	hi := append([]uint64(nil), bounds...)
	return Rect{Lo: lo, Hi: hi}
}

// FullRect returns the rect covering the schema's entire indexed space.
func (s *Schema) FullRect() Rect { return NewRect(s.Bounds()) }

// Dims returns the rect dimensionality.
func (r Rect) Dims() int { return len(r.Lo) }

// Valid reports whether Lo <= Hi on every dimension and lengths agree.
func (r Rect) Valid() bool {
	if len(r.Lo) != len(r.Hi) || len(r.Lo) == 0 {
		return false
	}
	for i := range r.Lo {
		if r.Lo[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// Clone deep-copies the rect.
func (r Rect) Clone() Rect {
	return Rect{Lo: append([]uint64(nil), r.Lo...), Hi: append([]uint64(nil), r.Hi...)}
}

// Contains reports whether point p lies inside the rect.
func (r Rect) Contains(p []uint64) bool {
	for i := range r.Lo {
		if p[i] < r.Lo[i] || p[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsRecord reports whether the record's indexed point (clamped per
// schema) lies inside the rect.
func (r Rect) ContainsRecord(s *Schema, rec Record) bool {
	for i := 0; i < s.IndexDims; i++ {
		v := rec[i]
		if b := s.Attrs[i].Bound(); v > b {
			v = b
		}
		if v < r.Lo[i] || v > r.Hi[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether two rects overlap (inclusive bounds).
func (r Rect) Intersects(o Rect) bool {
	for i := range r.Lo {
		if r.Hi[i] < o.Lo[i] || o.Hi[i] < r.Lo[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether o is entirely inside r.
func (r Rect) ContainsRect(o Rect) bool {
	for i := range r.Lo {
		if o.Lo[i] < r.Lo[i] || o.Hi[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// Intersect returns the intersection of two overlapping rects; ok is false
// if they do not overlap.
func (r Rect) Intersect(o Rect) (Rect, bool) {
	if !r.Intersects(o) {
		return Rect{}, false
	}
	out := r.Clone()
	for i := range out.Lo {
		if o.Lo[i] > out.Lo[i] {
			out.Lo[i] = o.Lo[i]
		}
		if o.Hi[i] < out.Hi[i] {
			out.Hi[i] = o.Hi[i]
		}
	}
	return out, true
}

// String renders the rect as [lo..hi] per dimension.
func (r Rect) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i := range r.Lo {
		if i > 0 {
			sb.WriteString(" × ")
		}
		fmt.Fprintf(&sb, "[%d..%d]", r.Lo[i], r.Hi[i])
	}
	sb.WriteByte('}')
	return sb.String()
}
