package mind_test

import (
	"testing"
	"time"

	"mind/internal/cluster"
	"mind/internal/schema"
	"mind/internal/wire"
)

// TestClientAdmissionShed drives a client request flood into a
// rate-limited node over simnet (virtual clock, so the token-bucket
// arithmetic is fully deterministic): the burst is admitted, the excess
// is shed with explicit Shed responses, the shed request ids are NOT
// remembered, and after the bucket refills a retry of a shed request
// executes as a fresh request.
func TestClientAdmissionShed(t *testing.T) {
	const burst = 5
	c := mkCluster(t, 4, 11, func(o *cluster.Options) {
		o.Node.ClientRateLimit = 5 // 5 req/s per client
		o.Node.ClientRateBurst = burst
	})
	if err := c.CreateIndex(testSchema()); err != nil {
		t.Fatal(err)
	}

	client, err := c.Net.Endpoint("client:1")
	if err != nil {
		t.Fatal(err)
	}
	acks := make(map[uint64]*wire.ClientAck)
	var qresps []*wire.ClientQueryResp
	client.SetHandler(func(_ string, data []byte) {
		m, err := wire.Decode(data)
		if err != nil {
			t.Errorf("client decode: %v", err)
			return
		}
		switch r := m.(type) {
		case *wire.ClientAck:
			acks[r.ReqID] = r
		case *wire.ClientQueryResp:
			qresps = append(qresps, r)
		}
	})

	target := c.Nodes[0].Addr()
	// A same-instant flood of 20 inserts: exactly the burst is admitted
	// (no virtual time passes between deliveries, so no refill).
	const flood = 20
	for i := 0; i < flood; i++ {
		rec := schema.Record{uint64(i * 400), uint64(i * 1000), uint64(i * 397), uint64(i)}
		client.Send(target, wire.Encode(&wire.ClientInsert{ReqID: uint64(i + 1), Index: "test-index", Rec: rec}))
	}
	if !c.Net.RunUntil(func() bool { return len(acks) == flood }, 1_000_000) {
		t.Fatalf("only %d/%d responses", len(acks), flood)
	}
	okN, shedN := 0, 0
	for _, a := range acks {
		switch {
		case a.OK && !a.Shed:
			okN++
		case a.Shed && !a.OK:
			shedN++
		default:
			t.Fatalf("ack neither clean success nor shed: %+v", a)
		}
	}
	if okN != burst || shedN != flood-burst {
		t.Fatalf("admitted %d shed %d, want %d/%d", okN, shedN, burst, flood-burst)
	}
	st := c.Nodes[0].Stats()
	if st.ShedInserts != flood-burst {
		t.Fatalf("ShedInserts = %d, want %d", st.ShedInserts, flood-burst)
	}

	// A query flood against the drained bucket sheds with the explicit
	// query-side flag.
	client.Send(target, wire.Encode(&wire.ClientQuery{ReqID: 100, Index: "test-index", Rect: fullRect()}))
	if !c.Net.RunUntil(func() bool { return len(qresps) == 1 }, 1_000_000) {
		t.Fatal("no query response")
	}
	if !qresps[0].Shed || qresps[0].Complete {
		t.Fatalf("query against drained bucket: %+v", qresps[0])
	}
	if c.Nodes[0].Stats().ShedQueries != 1 {
		t.Fatalf("ShedQueries = %d, want 1", c.Nodes[0].Stats().ShedQueries)
	}

	// Refill, then retry one of the shed request ids: it must execute as
	// a fresh request (shed ids are never cached), and the node must not
	// have stored any of the shed records.
	var shedID uint64
	for id, a := range acks {
		if a.Shed {
			shedID = id
			break
		}
	}
	c.Settle(2 * time.Second) // 5/s for 2s virtual seconds ≫ 1 token
	delete(acks, shedID)
	rec := schema.Record{7, 7, 7, 7}
	client.Send(target, wire.Encode(&wire.ClientInsert{ReqID: shedID, Index: "test-index", Rec: rec}))
	if !c.Net.RunUntil(func() bool { _, ok := acks[shedID]; return ok }, 1_000_000) {
		t.Fatal("no response to retried shed request")
	}
	if a := acks[shedID]; !a.OK || a.Shed {
		t.Fatalf("retry of shed request: %+v", a)
	}

	// Exactly the admitted inserts landed: the burst plus the retry.
	total := 0
	for _, nd := range c.Nodes {
		total += nd.StoredRecords("test-index")
	}
	if total != burst+1 {
		t.Fatalf("stored %d records, want %d", total, burst+1)
	}
}

// TestGossipAdmissionShed rate-limits flood gossip on the receiving
// side: with a one-message bucket, the first flood lands and the second
// is counted as shed — and because the refusal happens before the dedup
// mark, a re-flood after refill still applies.
func TestGossipAdmissionShed(t *testing.T) {
	c := mkCluster(t, 2, 12, func(o *cluster.Options) {
		o.Node.GossipRateLimit = 0.5 // one flood per 2s per peer
		o.Node.GossipRateBurst = 1
	})
	if err := c.Nodes[0].CreateIndex(testSchema(), nil); err != nil {
		t.Fatal(err)
	}
	ok := c.Net.RunUntil(func() bool { return c.Nodes[1].HasIndex("test-index") }, 1_000_000)
	if !ok {
		t.Fatal("create flood did not land within the burst")
	}

	// Immediate drop: the bucket at node 1 is drained, so the flood is
	// shed and node 1 keeps the index.
	if err := c.Nodes[0].DropIndex("test-index"); err != nil {
		t.Fatal(err)
	}
	c.Settle(500 * time.Millisecond)
	if !c.Nodes[1].HasIndex("test-index") {
		t.Fatal("drop flood landed despite a drained gossip bucket")
	}
	if shed := c.Nodes[1].Stats().ShedGossip; shed == 0 {
		t.Fatal("no gossip recorded as shed")
	}

	// After refill, flooding works again: node 0 (which already dropped
	// locally) re-creates — idempotent at node 1, but consuming its
	// refilled token — waits out another refill, then re-floods the drop,
	// which must now land. The shed happened before the dedup mark, so
	// the re-flooded drop (a fresh op id) is not poisoned.
	c.Settle(4 * time.Second)
	if err := c.Nodes[0].CreateIndex(testSchema(), nil); err != nil {
		t.Fatal(err)
	}
	c.Settle(4 * time.Second)
	if err := c.Nodes[0].DropIndex("test-index"); err != nil {
		t.Fatal(err)
	}
	dropped := c.Net.RunUntil(func() bool { return !c.Nodes[1].HasIndex("test-index") }, 1_000_000)
	if !dropped {
		t.Fatal("refilled gossip bucket still shedding")
	}
}
