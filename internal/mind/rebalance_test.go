package mind_test

import (
	"testing"
	"time"

	"mind/internal/cluster"
	"mind/internal/embed"
	"mind/internal/schema"
)

// TestLocalHistogramProjectsTimestamps pins the §3.7 stationarity
// projection: the histogram of day-d data describes the PREDICTED day
// d+1 distribution, i.e. each record's timestamp shifted one version
// period forward, so balanced cuts computed from it land inside the
// next day's time range.
func TestLocalHistogramProjectsTimestamps(t *testing.T) {
	c := mkCluster(t, 1, 61, nil) // VersionSeconds = 3600 in the test config
	sch := testSchema()
	if err := c.CreateIndex(sch); err != nil {
		t.Fatal(err)
	}
	// Version-0 records: timestamps in [100, 3040] — strictly inside the
	// first hour, away from bin edges.
	for i := 0; i < 50; i++ {
		rec := schema.Record{uint64(i * 100), uint64(100 + i*60), uint64(i * 90), uint64(i)}
		res, _, _ := c.InsertWait(0, "test-index", rec)
		if !res.OK {
			t.Fatal("insert failed")
		}
	}
	// Granularity 24 over the 86400 time bound gives 3601-second bins
	// aligned with the hourly version period, so the projection is
	// visible at bin resolution.
	h, err := c.Nodes[0].LocalHistogram("test-index", 0, 24)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 50 {
		t.Fatalf("histogram total = %v", h.Total())
	}
	// The mass must sit in the projected window (second hour), not the
	// source window (first hour).
	inOrig := h.CountRange([]uint64{0, 0, 0}, []uint64{9999, 3600, 9999})
	inNext := h.CountRange([]uint64{0, 3601, 0}, []uint64{9999, 7201, 9999})
	if inOrig > 1 {
		t.Errorf("%.1f records left in the source window", inOrig)
	}
	if inNext < 49 {
		t.Errorf("projected window holds %.1f/50 records", inNext)
	}
}

// TestHistogramCollectionDesignatedNode checks that reports from every
// node reach the all-zero-code owner and exactly one install flood
// results.
func TestHistogramCollectionDesignatedNode(t *testing.T) {
	c := mkCluster(t, 8, 63, func(o *cluster.Options) {
		o.Node.HistCollectWait = 2 * time.Second
		o.Node.BalancedCutDepth = 5
	})
	sch := testSchema()
	if err := c.CreateIndex(sch); err != nil {
		t.Fatal(err)
	}
	c.Settle(2 * time.Second)
	for i := 0; i < 100; i++ {
		rec := schema.Record{uint64(i % 300), uint64(i * 30 % 3600), uint64(i % 500), uint64(i)}
		res, _, _ := c.InsertWait(i%8, "test-index", rec)
		if !res.OK {
			t.Fatal("insert failed")
		}
	}
	for _, nd := range c.Nodes {
		if err := nd.ReportHistogram("test-index", 0, 6); err != nil {
			t.Fatal(err)
		}
	}
	c.Settle(20 * time.Second)
	// Every node ends with the same version-1 balanced tree.
	probe := []uint64{100, 3605, 100}
	var refCode string
	for _, nd := range c.Nodes {
		tr, err := nd.CutTree("test-index", 1)
		if err != nil {
			t.Fatal(err)
		}
		if tr.ExplicitDepth() != 5 {
			t.Fatalf("%s: depth %d", nd.Addr(), tr.ExplicitDepth())
		}
		code := tr.PointCode(probe, 10).String()
		if refCode == "" {
			refCode = code
		} else if code != refCode {
			t.Fatalf("inconsistent installed trees: %s vs %s", code, refCode)
		}
	}
}

// TestRebalanceEdgeCases drives the collection loop through its
// degenerate inputs: a day with no data anywhere (the merged histogram
// is empty, so every balanced cut must fall back to the midpoint), a
// single-node cluster (the designated node is the reporter itself and
// the install flood has no recipients), and the version counter's
// rollover at ^uint32(0) (day+1 wraps to version 0; the install must
// land there rather than panic or vanish).
func TestRebalanceEdgeCases(t *testing.T) {
	const cutDepth = 5
	cases := []struct {
		name        string
		nodes       int
		day         uint32
		inserts     int
		wantVersion uint32
		// wantMidpoint asserts the installed tree is indistinguishable
		// from the uniform embedding (empty histogram fallback).
		wantMidpoint bool
	}{
		{name: "empty histogram", nodes: 4, day: 0, inserts: 0, wantVersion: 1, wantMidpoint: true},
		{name: "single node index", nodes: 1, day: 0, inserts: 20, wantVersion: 1},
		{name: "version rollover", nodes: 2, day: ^uint32(0), inserts: 0, wantVersion: 0, wantMidpoint: true},
	}
	for ci, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c := mkCluster(t, tc.nodes, 64+int64(ci), func(o *cluster.Options) {
				o.Node.HistCollectWait = 2 * time.Second
				o.Node.BalancedCutDepth = cutDepth
			})
			sch := testSchema()
			if err := c.CreateIndex(sch); err != nil {
				t.Fatal(err)
			}
			c.Settle(2 * time.Second)
			for i := 0; i < tc.inserts; i++ {
				rec := schema.Record{uint64(i * 37 % 10000), uint64(i * 90 % 3600), uint64(i % 500), uint64(i)}
				res, _, _ := c.InsertWait(i%tc.nodes, "test-index", rec)
				if !res.OK {
					t.Fatal("insert failed")
				}
			}
			for _, nd := range c.Nodes {
				h, err := nd.LocalHistogram("test-index", tc.day, 6)
				if err != nil {
					t.Fatalf("%s: LocalHistogram: %v", nd.Addr(), err)
				}
				if tc.inserts == 0 && h.Total() != 0 {
					t.Fatalf("%s: empty day has histogram total %v", nd.Addr(), h.Total())
				}
				if err := nd.ReportHistogram("test-index", tc.day, 6); err != nil {
					t.Fatal(err)
				}
			}
			c.Settle(20 * time.Second)
			uni := embed.Uniform(sch.Bounds())
			probes := [][]uint64{{0, 0, 0}, {9999, 86400, 9999}, {5000, 43200, 17}}
			for _, nd := range c.Nodes {
				tr, err := nd.CutTree("test-index", tc.wantVersion)
				if err != nil {
					t.Fatal(err)
				}
				if tr.ExplicitDepth() != cutDepth {
					t.Fatalf("%s: version %d tree depth %d, want %d",
						nd.Addr(), tc.wantVersion, tr.ExplicitDepth(), cutDepth)
				}
				if tc.wantMidpoint {
					for _, p := range probes {
						if got, want := tr.PointCode(p, 10), uni.PointCode(p, 10); !got.Equal(want) {
							t.Fatalf("%s: empty-histogram cuts diverge from midpoints at %v: %s != %s",
								nd.Addr(), p, got, want)
						}
					}
				}
			}
		})
	}
}
