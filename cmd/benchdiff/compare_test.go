package main

import (
	"strings"
	"testing"
)

func rep(id string, values map[string]float64) report {
	return report{ID: id, Values: values}
}

func find(t *testing.T, diffs []Diff, exp, metric string) Diff {
	t.Helper()
	for _, d := range diffs {
		if d.Experiment == exp && d.Metric == metric {
			return d
		}
	}
	t.Fatalf("no diff for %s/%s", exp, metric)
	return Diff{}
}

func TestCompareDirections(t *testing.T) {
	base := []report{rep("e", map[string]float64{
		"insert_per_sec": 1000, // higher better
		"p99_latency_ms": 10,   // lower better
		"drop_frac":      0.10, // lower better
		"recall":         0.99, // higher better
	})}
	cur := []report{rep("e", map[string]float64{
		"insert_per_sec": 800,  // -20%: regression
		"p99_latency_ms": 10.5, // +5%: within threshold
		"drop_frac":      0.01, // improved
		"recall":         0.50, // -49%: regression
	})}
	diffs := Compare(base, cur, 0.15)
	if got := find(t, diffs, "e", "insert_per_sec").Verdict; got != Regression {
		t.Errorf("insert_per_sec verdict = %v, want Regression", got)
	}
	if got := find(t, diffs, "e", "p99_latency_ms").Verdict; got != OK {
		t.Errorf("p99_latency_ms verdict = %v, want OK", got)
	}
	if got := find(t, diffs, "e", "drop_frac").Verdict; got != OK {
		t.Errorf("drop_frac verdict = %v, want OK", got)
	}
	if got := find(t, diffs, "e", "recall").Verdict; got != Regression {
		t.Errorf("recall verdict = %v, want Regression", got)
	}
}

func TestCompareLatencyRegression(t *testing.T) {
	base := []report{rep("e", map[string]float64{"query_latency_ms": 10})}
	cur := []report{rep("e", map[string]float64{"query_latency_ms": 20})}
	d := find(t, Compare(base, cur, 0.15), "e", "query_latency_ms")
	if d.Verdict != Regression {
		t.Fatalf("latency doubling: verdict = %v, want Regression", d.Verdict)
	}
}

func TestCompareRealTimeInformational(t *testing.T) {
	base := []report{rep("ingest-stream", map[string]float64{
		"rt_sustained_acked_per_sec": 500_000,
	})}
	cur := []report{rep("ingest-stream", map[string]float64{
		"rt_sustained_acked_per_sec": 100_000, // -80% but rt_: never gates
	})}
	d := find(t, Compare(base, cur, 0.15), "ingest-stream", "rt_sustained_acked_per_sec")
	if d.Verdict != Info {
		t.Fatalf("rt_ metric verdict = %v, want Info", d.Verdict)
	}
}

func TestCompareUnknownDirectionInformational(t *testing.T) {
	base := []report{rep("e", map[string]float64{"crossover_scale": 3})}
	cur := []report{rep("e", map[string]float64{"crossover_scale": 9})}
	d := find(t, Compare(base, cur, 0.15), "e", "crossover_scale")
	if d.Verdict != Info {
		t.Fatalf("unknown-direction verdict = %v, want Info", d.Verdict)
	}
}

func TestCompareMissingMetricAndExperiment(t *testing.T) {
	base := []report{
		rep("e1", map[string]float64{"insert_per_sec": 1000, "recall": 0.9}),
		rep("e2", map[string]float64{"recall": 0.9}),
	}
	cur := []report{rep("e1", map[string]float64{"insert_per_sec": 1000})}
	diffs := Compare(base, cur, 0.15)
	if d := find(t, diffs, "e1", "recall"); d.Verdict != Regression {
		t.Errorf("missing metric verdict = %v, want Regression", d.Verdict)
	}
	if d := find(t, diffs, "e2", "recall"); d.Verdict != Regression {
		t.Errorf("missing experiment verdict = %v, want Regression", d.Verdict)
	}
	if !strings.Contains(find(t, diffs, "e2", "recall").Reason, "experiment missing") {
		t.Errorf("missing-experiment reason not surfaced")
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	base := []report{rep("e", map[string]float64{"failed": 0, "incomplete": 0})}
	cur := []report{rep("e", map[string]float64{"failed": 2, "incomplete": 0})}
	diffs := Compare(base, cur, 0.15)
	if d := find(t, diffs, "e", "failed"); d.Verdict != Regression {
		t.Errorf("failed 0->2 verdict = %v, want Regression", d.Verdict)
	}
	if d := find(t, diffs, "e", "incomplete"); d.Verdict != OK {
		t.Errorf("incomplete 0->0 verdict = %v, want OK", d.Verdict)
	}
}

func TestCompareNewMetricIgnored(t *testing.T) {
	base := []report{rep("e", map[string]float64{"recall": 0.9})}
	cur := []report{rep("e", map[string]float64{"recall": 0.9, "brand_new": 7})}
	for _, d := range Compare(base, cur, 0.15) {
		if d.Metric == "brand_new" {
			t.Fatalf("new metric should not appear in baseline-driven diff")
		}
	}
}

func TestCompareWallClockInformational(t *testing.T) {
	base := []report{rep("ablation-store", map[string]float64{"kd_speedup": 3.0})}
	cur := []report{rep("ablation-store", map[string]float64{"kd_speedup": 1.5})}
	d := find(t, Compare(base, cur, 0.15), "ablation-store", "kd_speedup")
	if d.Verdict != Info {
		t.Fatalf("speedup verdict = %v, want Info", d.Verdict)
	}
}
