package mind

import (
	"time"

	"mind/internal/metrics"
)

// Overload protection: per-source token-bucket admission control on the
// node's inbound work. The vocabulary mirrors the ingest engine's
// drop/block backpressure — shedding is an explicit, counted refusal
// with a response (client RPCs) or a counted silent drop (gossip, which
// is redundant by construction), never a silent stall. Everything here
// is driven by the node's transport.Clock, so admission decisions are
// deterministic under simnet.
//
// Two bucket families exist, both disabled by default (Config zero
// values) so lab runs and the chaos harness see no admission at all:
//
//   - client buckets, keyed by the client's address: ClientInsert /
//     ClientQuery / ClientCreateIndex / ClientDropIndex. A refused
//     request gets ClientAck{Shed:true} / ClientQueryResp{Shed:true}
//     and is NOT recorded in the client dedup cache, so a later retry
//     is re-admitted as a fresh request.
//   - gossip buckets, keyed by the sending peer: flood/control messages
//     (CreateIndex, DropIndex, HistInstall, RetireVersion,
//     RegionRecall). A refused flood is dropped before markOp, so the
//     same operation arriving later (or from another contact) still
//     propagates.
//
// Buckets live in the same two-generation bounded maps the dedup caches
// use: at dedupCap live buckets the generations rotate, and a source
// seen again is promoted back with its balance intact.

// tokenBucket is one source's admission balance.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// bucketMap is a bounded, two-generation map of token buckets.
type bucketMap struct {
	cur  map[uint64]*tokenBucket
	prev map[uint64]*tokenBucket
}

func newBucketMap() *bucketMap {
	return &bucketMap{cur: make(map[uint64]*tokenBucket)}
}

// take refills the source's bucket to now and consumes one token,
// reporting whether the source is within its rate. rate is tokens per
// second; burst is the bucket capacity (and a new source's opening
// balance).
func (bm *bucketMap) take(key uint64, now time.Time, rate, burst float64) bool {
	b := bm.cur[key]
	if b == nil {
		if b = bm.prev[key]; b != nil {
			bm.cur[key] = b // promote with balance intact
		}
	}
	if b == nil {
		if len(bm.cur) >= dedupCap {
			bm.prev = bm.cur
			bm.cur = make(map[uint64]*tokenBucket)
		}
		b = &tokenBucket{tokens: burst, last: now}
		bm.cur[key] = b
	}
	if el := now.Sub(b.last); el > 0 {
		b.tokens += el.Seconds() * rate
		if b.tokens > burst {
			b.tokens = burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// admitClient charges one client RPC against the per-client bucket and
// the node-wide pending-insert ceiling. countPending selects the
// MaxPendingOps check (inserts add tracked in-flight state; queries and
// index control don't).
func (n *Node) admitClient(from string, countPending bool) bool {
	if countPending && n.cfg.MaxPendingOps > 0 &&
		int(n.pendingGauge.Load()) >= n.cfg.MaxPendingOps {
		return false
	}
	if n.cfg.ClientRateLimit <= 0 {
		return true
	}
	burst := float64(n.cfg.ClientRateBurst)
	if burst < 1 {
		burst = n.cfg.ClientRateLimit
	}
	n.admMu.Lock()
	defer n.admMu.Unlock()
	return n.clientBuckets.take(hashAddr(from), n.clock.Now(), n.cfg.ClientRateLimit, burst)
}

// admitGossip charges one flood/control message against the sending
// peer's bucket.
func (n *Node) admitGossip(from string) bool {
	if n.cfg.GossipRateLimit <= 0 {
		return true
	}
	burst := float64(n.cfg.GossipRateBurst)
	if burst < 1 {
		burst = n.cfg.GossipRateLimit
	}
	n.admMu.Lock()
	defer n.admMu.Unlock()
	return n.gossipBuckets.take(hashAddr(from), n.clock.Now(), n.cfg.GossipRateLimit, burst)
}

// AdmissionStats snapshots the shed counters.
func (n *Node) AdmissionStats() metrics.Admission {
	return metrics.Admission{
		ShedInserts: n.shedInserts.Load(),
		ShedQueries: n.shedQueries.Load(),
		ShedGossip:  n.shedGossip.Load(),
	}
}
