package store

import (
	"math/rand"
	"testing"
)

func TestKDDuplicateHeavy(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	kd, sc := NewKD(sch3()), NewScan(sch3())
	// Hot-pair-like workload: many records sharing identical or
	// near-identical indexed coordinates, timestamps monotone.
	for i := 0; i < 3000; i++ {
		var rec []uint64
		switch i % 3 {
		case 0:
			rec = []uint64{5000, uint64(i / 10), 33, uint64(i)}
		case 1:
			rec = []uint64{5000, uint64(i / 10), uint64(20 + i%40), uint64(i)}
		default:
			rec = []uint64{r.Uint64() % 10000, uint64(i / 10), r.Uint64() % 10000, uint64(i)}
		}
		kd.Insert(rec)
		sc.Insert(rec)
	}
	if kd.Len() != sc.Len() {
		t.Fatalf("len %d vs %d", kd.Len(), sc.Len())
	}
	full := sch3().FullRect()
	a, b := kd.Query(full), sc.Query(full)
	if len(a) != len(b) {
		t.Fatalf("full query %d vs %d records", len(a), len(b))
	}
	for i := 0; i < 200; i++ {
		q := randRect(r)
		x, y := kd.Query(q), sc.Query(q)
		if !sameRecs(x, y) {
			t.Fatalf("query %v: kd %d scan %d", q, len(x), len(y))
		}
	}
}
