package store

import (
	"sort"

	"mind/internal/schema"
)

// Versioned keeps one store per index version. MIND does not migrate
// historical data when the daily balanced cuts change; instead each day's
// data lives in its own version of the index, embedded with that day's
// cuts, and queries address the versions their time interval spans
// (§3.7). The version id is the day number (timestamp / 86400) by
// convention, but Versioned itself treats it as opaque.
type Versioned struct {
	sch      *schema.Schema
	versions map[uint32]*KD
}

// NewVersioned creates an empty versioned store.
func NewVersioned(sch *schema.Schema) *Versioned {
	return &Versioned{sch: sch, versions: make(map[uint32]*KD)}
}

// Version returns the store for version v, creating it if absent.
func (vs *Versioned) Version(v uint32) *KD {
	s, ok := vs.versions[v]
	if !ok {
		s = NewKD(vs.sch)
		vs.versions[v] = s
	}
	return s
}

// Has reports whether version v exists.
func (vs *Versioned) Has(v uint32) bool {
	_, ok := vs.versions[v]
	return ok
}

// Versions lists existing version ids in ascending order.
func (vs *Versioned) Versions() []uint32 {
	out := make([]uint32, 0, len(vs.versions))
	for v := range vs.versions {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Insert adds the record to version v.
func (vs *Versioned) Insert(v uint32, rec schema.Record) {
	vs.Version(v).Insert(rec)
}

// Query resolves rect against the given versions (missing versions are
// skipped) and concatenates the results.
func (vs *Versioned) Query(versions []uint32, rect schema.Rect) []schema.Record {
	var out []schema.Record
	for _, v := range versions {
		if s, ok := vs.versions[v]; ok {
			out = append(out, s.Query(rect)...)
		}
	}
	return out
}

// QueryAll resolves rect against every version.
func (vs *Versioned) QueryAll(rect schema.Rect) []schema.Record {
	return vs.Query(vs.Versions(), rect)
}

// Len returns the total record count across versions.
func (vs *Versioned) Len() int {
	n := 0
	for _, s := range vs.versions {
		n += s.Len()
	}
	return n
}

// Drop removes version v and frees its storage; used when an index
// version ages out.
func (vs *Versioned) Drop(v uint32) { delete(vs.versions, v) }
